//! CenterTrack (Zhou et al., ECCV 2020): tracking objects as points.
//!
//! A state-of-the-art computer-vision multi-object tracker: a joint
//! detection + tracking network run at native resolution and framerate,
//! matching objects greedily by predicted center offsets. The paper
//! (§4.1) obtains a speed–accuracy trade-off by tuning resolution and
//! framerate, and finds CenterTrack uncompetitive on speed–accuracy —
//! it is built for accuracy on MOT-style benchmarks, not throughput.
//!
//! Modelled here as a heavier joint network (detector cost × 1.6 for the
//! added tracking head) with greedy center-offset matching. Because the
//! offset head is trained on consecutive frames, matching quality decays
//! quickly at reduced frame rates: the matching radius stays calibrated
//! to single-frame motion.

use crate::common::Baseline;
use otif_cv::{
    Component, CostLedger, CostModel, Detection, DetectorArch, DetectorConfig, SimDetector,
};
use otif_sim::Clip;
use otif_track::{Track, TrackId};

/// The CenterTrack baseline.
pub struct CenterTrackBaseline {
    /// Detector noise seed.
    pub detector_seed: u64,
    /// Simulated cost-model constants.
    pub cost: CostModel,
    /// (scale, gap) grid.
    pub configs: Vec<(f32, usize)>,
    /// Extra cost factor of the joint detection+tracking network.
    pub head_factor: f64,
}

impl CenterTrackBaseline {
    /// Build the default (scale, gap) configuration grid.
    pub fn new(detector_seed: u64, cost: CostModel) -> Self {
        CenterTrackBaseline {
            detector_seed,
            cost,
            configs: vec![
                (1.0, 1),
                (0.75, 1),
                (0.5, 1),
                (1.0, 2),
                (0.5, 2),
                (0.5, 4),
                (0.25, 4),
            ],
            head_factor: 1.6,
        }
    }

    fn run_clip(&self, cfg: (f32, usize), clip: &Clip, ledger: &CostLedger) -> Vec<Track> {
        let (scale, gap) = cfg;
        let detector = SimDetector::new(
            DetectorConfig::new(DetectorArch::MaskRcnn, scale),
            self.detector_seed,
        );
        let native_px = (clip.scene.width as f64) * (clip.scene.height as f64);

        struct Active {
            track: Track,
            vel: (f32, f32),
            last_frame: usize,
        }
        let mut active: Vec<Active> = Vec::new();
        let mut done: Vec<Track> = Vec::new();
        let mut next_id: TrackId = 0;

        let mut f = 0usize;
        while f < clip.num_frames() {
            ledger.charge(
                Component::Decode,
                otif_core::pipeline::decode_cost(&self.cost, native_px, scale, gap),
            );
            let dets: Vec<Detection> = detector.detect_frame(clip, f, ledger);
            // joint tracking head overhead
            ledger.charge(
                Component::Detector,
                detector.frame_cost(clip) * (self.head_factor - 1.0),
            );
            ledger.charge(
                Component::Tracker,
                self.cost.tracker_per_frame + dets.len() as f64 * self.cost.tracker_per_det,
            );

            // Greedy center matching within a single-frame-calibrated
            // radius: the offset head predicts one frame of motion, so the
            // radius does NOT grow with the gap (the method's reduced-rate
            // weakness).
            let mut claimed = vec![false; active.len()];
            let mut assigned: Vec<Option<usize>> = vec![None; dets.len()];
            let mut order: Vec<usize> = (0..dets.len()).collect();
            order.sort_by(|&a, &b| {
                dets[b]
                    .confidence
                    .partial_cmp(&dets[a].confidence)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for di in order {
                let d = &dets[di];
                let radius = (d.rect.w + d.rect.h) * 0.5 + 8.0;
                let mut best: Option<(usize, f32)> = None;
                for (ti, t) in active.iter().enumerate() {
                    if claimed[ti] {
                        continue;
                    }
                    let last = t.track.dets.last().unwrap().1.rect.center();
                    // offset head predicts one inter-frame step of motion
                    let pred = otif_geom::Point::new(last.x + t.vel.0, last.y + t.vel.1);
                    let dist = pred.dist(&d.rect.center());
                    if dist <= radius && best.map(|(_, bd)| dist < bd).unwrap_or(true) {
                        best = Some((ti, dist));
                    }
                }
                if let Some((ti, _)) = best {
                    claimed[ti] = true;
                    assigned[di] = Some(ti);
                }
            }

            let mut still_active = Vec::new();
            let mut matched_ids: Vec<bool> = vec![false; active.len()];
            for (di, det) in dets.into_iter().enumerate() {
                match assigned[di] {
                    Some(ti) => {
                        matched_ids[ti] = true;
                        let t = &mut active[ti];
                        let g = (f - t.last_frame).max(1) as f32;
                        let lc = t.track.dets.last().unwrap().1.rect.center();
                        let cc = det.rect.center();
                        t.vel = ((cc.x - lc.x) / g, (cc.y - lc.y) / g);
                        t.track.push(f, det);
                        t.last_frame = f;
                    }
                    None => {
                        let id = next_id;
                        next_id += 1;
                        let mut track = Track::new(id, det.class);
                        track.push(f, det);
                        still_active.push(Active {
                            track,
                            vel: (0.0, 0.0),
                            last_frame: f,
                        });
                    }
                }
            }
            // unmatched tracks terminate immediately (CenterTrack keeps
            // no long-lived unmatched state)
            let mut idx = 0;
            active.retain_mut(|t| {
                let keep = matched_ids[idx];
                idx += 1;
                if !keep {
                    done.push(std::mem::replace(
                        &mut t.track,
                        Track::new(0, otif_sim::ObjectClass::Car),
                    ));
                }
                keep
            });
            active.extend(still_active);
            f += gap;
        }
        for t in active {
            done.push(t.track);
        }
        done.retain(|t| t.len() >= 2);
        done.sort_by_key(|t| t.id);
        done
    }
}

impl Baseline for CenterTrackBaseline {
    fn name(&self) -> &'static str {
        "centertrack"
    }

    fn num_configs(&self) -> usize {
        self.configs.len()
    }

    fn describe(&self, i: usize) -> String {
        let (s, g) = self.configs[i];
        format!("centertrack @{s}x gap={g}")
    }

    fn run(&self, i: usize, clips: &[Clip], ledger: &CostLedger) -> Vec<Vec<Track>> {
        clips
            .iter()
            .map(|c| self.run_clip(self.configs[i], c, ledger))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_sim::{DatasetConfig, DatasetKind};

    #[test]
    fn native_config_is_accurate_but_expensive() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 98).generate();
        let b = CenterTrackBaseline::new(5, CostModel::default());
        let ledger = CostLedger::new();
        let tracks = b.run(0, &d.test, &ledger);
        let total: usize = tracks.iter().map(|t| t.len()).sum();
        let gt: usize = d.test.iter().map(|c| c.gt_tracks.len()).sum();
        assert!(total as f32 > gt as f32 * 0.5, "{total} vs {gt}");
        // heavier than a plain MaskRcnn pass thanks to the tracking head
        let plain = SimDetector::new(DetectorConfig::new(DetectorArch::MaskRcnn, 1.0), 5);
        let frames: usize = d.test.iter().map(|c| c.num_frames()).sum();
        let plain_cost = plain.frame_cost(&d.test[0]) * frames as f64;
        assert!(ledger.get(Component::Detector) > plain_cost * 1.4);
    }

    #[test]
    fn track_quality_degrades_at_reduced_rate() {
        // Averaged over three fixed seeds so no single dataset draw
        // carries the assertion: any one seed can land a narrow
        // native/reduced gap, but the mean relative gap stays wide.
        let mut gaps = Vec::new();
        for seed in [97u64, 98, 99] {
            let d = DatasetConfig::small(DatasetKind::Caldot1, seed).generate();
            let b = CenterTrackBaseline::new(5, CostModel::default());
            let count = |cfg: usize| -> usize {
                b.run(cfg, &d.test, &CostLedger::new())
                    .iter()
                    .map(|t| t.len())
                    .sum()
            };
            let native = count(0); // gap 1
            let reduced = count(5); // 0.5x, gap 4
            gaps.push((reduced as f32 - native as f32).abs() / native as f32);
        }
        // fragmentation inflates (or detection losses deflate) counts;
        // either way reduced-rate should differ markedly from native.
        // Measured per-seed gaps: ~[0.63, 0.46, 0.15] — the 0.15 draw is
        // why a single seed was flaky; the mean sits at ~0.41.
        let mean = gaps.iter().sum::<f32>() / gaps.len() as f32;
        assert!(mean > 0.2, "mean relative gap {mean} (per-seed {gaps:?})");
    }
}
