#![warn(missing_docs)]

//! Re-implementations of the seven systems OTIF is compared against
//! (§4, "Baselines").
//!
//! Like the paper (which re-implements Miris, BlazeIt, NoScope, Chameleon
//! and CaTDet because the original code bases are not adaptable), we
//! implement every baseline over the same substrates OTIF uses — the same
//! simulated detectors, cost ledger and dataset splits — so comparisons
//! are paired:
//!
//! - [`MirisBaseline`] — variable-rate tracking with a pairwise matcher
//!   and per-query track refinement by extra decoding;
//! - [`ChameleonBaseline`] — detector architecture / resolution /
//!   framerate profiling with periodic re-profiling cost;
//! - [`NoScopeBaseline`] — classification proxy that skips entire frames
//!   with no objects; no resolution or framerate optimization;
//! - [`CaTDetBaseline`] — cascaded detection: a cheap low-resolution
//!   detector plus tracker predictions propose regions for the expensive
//!   detector; every frame processed;
//! - [`CenterTrackBaseline`] — native-resolution joint detection +
//!   tracking (heavier model, greedy center matching);
//! - [`BlazeItBaseline`] — per-query regression proxy + limit-query
//!   execution that applies the detector to top-scored frames;
//! - [`TastiBaseline`] — query-agnostic per-frame embeddings (expensive
//!   pre-processing) + per-query scorer + detector-at-query-time.
//!
//! Track-extraction baselines implement the [`Baseline`] trait so the
//! experiment harness can sweep their configurations into speed–accuracy
//! curves exactly as it does for OTIF.

pub mod blazeit;
pub mod catdet;
pub mod centertrack;
pub mod chameleon;
pub mod common;
pub mod miris;
pub mod noscope;
pub mod tasti;

pub use blazeit::BlazeItBaseline;
pub use catdet::CaTDetBaseline;
pub use centertrack::CenterTrackBaseline;
pub use chameleon::ChameleonBaseline;
pub use common::Baseline;
pub use miris::MirisBaseline;
pub use noscope::NoScopeBaseline;
pub use tasti::TastiBaseline;
