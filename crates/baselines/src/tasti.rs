//! TASTI (Kang et al.): task-agnostic indexes for queries over
//! unstructured data.
//!
//! TASTI splits the proxy into a query-agnostic **feature extractor**
//! (applied once per frame, at 224×224 in the original — much more
//! expensive than BlazeIt's 64×64 proxy, hence its 8× pre-processing
//! cost in Table 3) and a cheap per-query **scoring model** over the
//! embeddings. Embeddings are reusable across queries, but query
//! execution still applies the expensive detector to top-scored frames,
//! so multi-query workloads stay costly (§4.2).
//!
//! Our embedding is the cell-score grid of a mid-resolution segmentation
//! network (a spatial feature map describing where objects likely are —
//! exactly what TASTI's embeddings encode for these queries); the
//! per-query scorer aggregates the embedding with the same predicate-
//! specific pooling BlazeIt uses.

use otif_core::proxy::{CellGrid, SegProxyModel};
use otif_cv::{Component, CostLedger, CostModel, DetectorConfig, SimDetector};
use otif_query::{FrameLimitQuery, FrameQueryKind, FrameRef};
use otif_sim::{Clip, Renderer};

/// Per-frame embeddings for a split of clips.
pub struct TastiIndex {
    /// Embedding (cell-score grid) per frame per clip.
    pub grids: Vec<Vec<CellGrid>>,
    /// Simulated seconds spent building the index (query-agnostic
    /// pre-processing).
    pub build_seconds: f64,
}

/// The TASTI baseline (frame-level limit queries).
pub struct TastiBaseline<'a> {
    /// Detector applied at query time.
    pub detector: DetectorConfig,
    /// Detector noise seed.
    pub detector_seed: u64,
    /// Simulated cost-model constants.
    pub cost: CostModel,
    /// Mid-resolution feature extractor (≈224×224-class cost).
    pub extractor: &'a SegProxyModel,
}

impl<'a> TastiBaseline<'a> {
    /// Build TASTI around a trained mid-resolution extractor.
    pub fn new(
        detector: DetectorConfig,
        detector_seed: u64,
        cost: CostModel,
        extractor: &'a SegProxyModel,
    ) -> Self {
        TastiBaseline {
            detector,
            detector_seed,
            cost,
            extractor,
        }
    }

    /// Build the query-agnostic index: one embedding per frame.
    pub fn build_index(&self, clips: &[Clip]) -> TastiIndex {
        let ledger = CostLedger::new();
        let grids: Vec<Vec<CellGrid>> = clips
            .iter()
            .map(|clip| {
                let renderer = Renderer::new(clip);
                let native_px = (clip.scene.width as f64) * (clip.scene.height as f64);
                (0..clip.num_frames())
                    .map(|f| {
                        let scale = self.extractor.in_w as f32 / clip.scene.width as f32;
                        ledger.charge(
                            Component::Decode,
                            otif_core::pipeline::decode_cost(&self.cost, native_px, scale, 1),
                        );
                        let img = renderer.render(f, self.extractor.in_w, self.extractor.in_h);
                        self.extractor.score_cells(&img, &self.cost, &ledger)
                    })
                    .collect()
            })
            .collect();
        TastiIndex {
            grids,
            build_seconds: ledger.execution_total(),
        }
    }

    /// Per-query scoring model over an embedding.
    fn score(&self, query: &FrameLimitQuery, grid: &CellGrid) -> f32 {
        match &query.kind {
            FrameQueryKind::Count => grid.scores.iter().sum(),
            FrameQueryKind::Region(poly) => {
                let mut acc = 0.0;
                for cy in 0..grid.rows {
                    for cx in 0..grid.cols {
                        let c =
                            otif_geom::Point::new(cx as f32 * 32.0 + 16.0, cy as f32 * 32.0 + 16.0);
                        if poly.contains(&c) {
                            acc += grid.get(cx, cy);
                        }
                    }
                }
                acc
            }
            FrameQueryKind::HotSpot { radius } => {
                let span = ((radius / 32.0).ceil() as usize).max(1);
                let mut best = 0.0f32;
                for cy in 0..grid.rows {
                    for cx in 0..grid.cols {
                        let mut acc = 0.0;
                        for dy in 0..span {
                            for dx in 0..span {
                                if cy + dy < grid.rows && cx + dx < grid.cols {
                                    acc += grid.get(cx + dx, cy + dy);
                                }
                            }
                        }
                        best = best.max(acc);
                    }
                }
                best
            }
        }
    }

    /// Execute a limit query against a prebuilt index. Returns
    /// `(outputs, query seconds, detector invocations)`.
    pub fn execute(
        &self,
        query: &FrameLimitQuery,
        index: &TastiIndex,
        clips: &[Clip],
    ) -> (Vec<FrameRef>, f64, usize) {
        let mut ranked: Vec<(f32, FrameRef)> = Vec::new();
        for (ci, clip_grids) in index.grids.iter().enumerate() {
            for (f, grid) in clip_grids.iter().enumerate() {
                ranked.push((self.score(query, grid), FrameRef { clip: ci, frame: f }));
            }
        }
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        let detector = SimDetector::new(self.detector, self.detector_seed);
        let ledger = CostLedger::new();
        let mut outputs: Vec<FrameRef> = Vec::new();
        let mut invocations = 0usize;
        for (_, r) in ranked {
            if outputs.len() >= query.limit {
                break;
            }
            let clip = &clips[r.clip];
            let sep = (query.min_separation_s * clip.scene.fps as f32) as usize;
            if outputs
                .iter()
                .any(|o| o.clip == r.clip && o.frame.abs_diff(r.frame) < sep)
            {
                continue;
            }
            let dets = detector.detect_frame(clip, r.frame, &ledger);
            invocations += 1;
            let positions: Vec<otif_geom::Point> = dets.iter().map(|d| d.rect.center()).collect();
            if query.positions_match(&positions) {
                outputs.push(r);
            }
        }
        (outputs, ledger.execution_total(), invocations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_cv::{Detection, DetectorArch};
    use otif_sim::{DatasetConfig, DatasetKind, ObjectClass};

    fn trained_proxy(d: &otif_sim::Dataset, scale: f32) -> SegProxyModel {
        let clips: Vec<&Clip> = d.train.iter().collect();
        let labels: Vec<Vec<Vec<Detection>>> = d
            .train
            .iter()
            .map(|c| {
                (0..c.num_frames())
                    .map(|f| {
                        c.gt_boxes(f)
                            .into_iter()
                            .map(|(_, _, r)| Detection {
                                rect: r,
                                class: ObjectClass::Car,
                                confidence: 0.9,
                                appearance: vec![],
                                debug_gt: None,
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut m = SegProxyModel::new(d.scene.width as usize, d.scene.height as usize, scale, 5);
        m.train(&clips, &labels, 800, 0.01, 5);
        m
    }

    #[test]
    fn index_is_reusable_across_queries() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 111).generate();
        let extractor = trained_proxy(&d, 0.5);
        let b = TastiBaseline::new(
            DetectorConfig::new(DetectorArch::YoloV3, 1.0),
            3,
            CostModel::default(),
            &extractor,
        );
        let index = b.build_index(&d.test);
        assert!(index.build_seconds > 0.0);
        let q1 = FrameLimitQuery {
            kind: FrameQueryKind::Count,
            n: 2,
            limit: 3,
            min_separation_s: 2.0,
        };
        let q2 = FrameLimitQuery {
            kind: FrameQueryKind::HotSpot { radius: 64.0 },
            n: 2,
            limit: 3,
            min_separation_s: 2.0,
        };
        let (o1, s1, _) = b.execute(&q1, &index, &d.test);
        let (o2, s2, _) = b.execute(&q2, &index, &d.test);
        assert!(s1 > 0.0 && s2 > 0.0);
        // queries run against the same index; at least one produces output
        assert!(!o1.is_empty() || !o2.is_empty());
    }

    #[test]
    fn tasti_preprocessing_costs_more_than_blazeit() {
        // mid-res extractor vs low-res proxy: per the paper, TASTI's
        // index build is several times more expensive
        let d = DatasetConfig::small(DatasetKind::Caldot2, 112).generate();
        let extractor = trained_proxy(&d, 0.5);
        let low = trained_proxy(&d, 0.25);
        let tasti = TastiBaseline::new(
            DetectorConfig::new(DetectorArch::YoloV3, 1.0),
            3,
            CostModel::default(),
            &extractor,
        );
        let blazeit = crate::blazeit::BlazeItBaseline::new(
            DetectorConfig::new(DetectorArch::YoloV3, 1.0),
            3,
            CostModel::default(),
            &low,
        );
        let q = FrameLimitQuery {
            kind: FrameQueryKind::Count,
            n: 1,
            limit: 3,
            min_separation_s: 2.0,
        };
        let idx = tasti.build_index(&d.test);
        let (_, bz_pre) = blazeit.score_frames(&q, &d.test);
        assert!(
            idx.build_seconds > bz_pre * 1.5,
            "tasti {} vs blazeit {bz_pre}",
            idx.build_seconds
        );
    }
}
