//! The serving tier's determinism contract, end to end:
//!
//! - `TrackStore` round-trips `Engine` output losslessly (canonical
//!   JSON of loaded tracks == canonical JSON of extracted tracks);
//! - answer bytes are identical at worker-thread counts 1/2/8, with the
//!   cache off / cold / warm / in verify mode, and with index pruning
//!   on or off — for the full mixed workload over engine-extracted
//!   tracks (integration test) and over randomized synthetic stores
//!   (property test).

use otif_core::pipeline::ExecutionContext;
use otif_core::{OtifConfig, TrackerKind};
use otif_cv::{CostLedger, CostModel, Detection, DetectorArch, DetectorConfig};
use otif_engine::{Engine, EngineOptions};
use otif_geom::Rect;
use otif_serve::{
    mixed_workload, CacheMode, ClipInfo, QueryServer, ServeOptions, ServeQuery, TrackStore,
};
use otif_sim::{DatasetConfig, DatasetKind, ObjectClass};
use otif_track::Track;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("otif-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Extract tracks from a small synthetic dataset with the untrained
/// pipeline (no proxy, SORT, no refinement — fast and deterministic)
/// and ingest them into a fresh store at `dir`.
fn engine_store(dir: &Path) -> (TrackStore, Vec<Vec<Track>>) {
    let cfg = OtifConfig {
        detector: DetectorConfig::new(DetectorArch::YoloV3, 0.5),
        proxy: None,
        gap: 4,
        tracker: TrackerKind::Sort,
        refine: false,
    };
    let ctx = ExecutionContext::bare(CostModel::default(), 17);
    let clips = DatasetConfig::small(DatasetKind::Caldot1, 29)
        .generate()
        .test;
    let run = Engine::run(
        &cfg,
        &ctx,
        &clips,
        &EngineOptions::with_streams(2),
        &CostLedger::new(),
    );
    let mut store = TrackStore::create(dir).unwrap();
    let mut extracted = Vec::new();
    for (clip, outcome) in clips.iter().zip(&run.tracks) {
        let tracks = outcome.tracks().expect("healthy run").to_vec();
        let info = ClipInfo {
            num_frames: clip.num_frames(),
            fps: clip.scene.fps as f32,
            width: clip.scene.width as f32,
            height: clip.scene.height as f32,
        };
        store.ingest_clip(&info, &tracks).unwrap();
        extracted.push(tracks);
    }
    (store, extracted)
}

#[test]
fn store_roundtrips_engine_output_losslessly() {
    let dir = temp_dir("roundtrip");
    let (_, extracted) = engine_store(&dir);
    // reopen cold so every clip goes through disk
    let store = TrackStore::open(&dir).unwrap();
    assert_eq!(store.len(), extracted.len());
    for (id, tracks) in extracted.iter().enumerate() {
        let loaded = store.load(id).unwrap();
        assert_eq!(
            serde_json::to_string(&loaded.tracks).unwrap(),
            serde_json::to_string(tracks).unwrap(),
            "clip {id}: ingest → load must be lossless"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Run every query in `workload` and return the answer bytes in order.
fn answers(server: &QueryServer, workload: &[ServeQuery], opts: &ServeOptions) -> Vec<Vec<u8>> {
    workload
        .iter()
        .map(|q| server.execute_bytes(q, opts).unwrap().as_ref().clone())
        .collect()
}

#[test]
fn answers_byte_identical_across_threads_cache_and_pruning() {
    let dir = temp_dir("identity");
    engine_store(&dir);
    let store = Arc::new(TrackStore::open(&dir).unwrap());
    let workload = mixed_workload(store.metas(), 2, 42);

    // reference: single-threaded, no cache, no pruning
    let reference = answers(
        &QueryServer::new(Arc::clone(&store), 64),
        &workload,
        &ServeOptions {
            threads: 1,
            pruning: false,
            cache: CacheMode::Off,
        },
    );

    for threads in [1usize, 2, 8] {
        for pruning in [false, true] {
            // fresh server per combination → cold answer cache
            let server = QueryServer::new(Arc::clone(&store), 64);
            store.evict_clips(); // cold clip cache too
            let cold = answers(
                &server,
                &workload,
                &ServeOptions {
                    threads,
                    pruning,
                    cache: CacheMode::On,
                },
            );
            // warm: every repeated query now hits the cache; verify mode
            // re-evaluates each hit and asserts bytes internally as well
            let warm = answers(
                &server,
                &workload,
                &ServeOptions {
                    threads,
                    pruning,
                    cache: CacheMode::Verify,
                },
            );
            assert_eq!(
                cold, reference,
                "threads={threads} pruning={pruning}: cold-cache answers must match reference"
            );
            assert_eq!(
                warm, reference,
                "threads={threads} pruning={pruning}: warm-cache answers must match reference"
            );
            let stats = server.stats();
            assert!(
                stats.cache.hits >= workload.len() as u64,
                "second pass must be served from the cache (hits={})",
                stats.cache.hits
            );
            if pruning {
                assert!(
                    stats.clips_pruned > 0,
                    "the corner-region query must prune clips at the catalog"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Random-walk synthetic tracks from a seeded LCG (the vendored
/// proptest has no collection-of-struct strategies).
fn synth_tracks(seed: u64, n_tracks: usize, w: f32, h: f32) -> Vec<Track> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f32 / (1u64 << 31) as f32
    };
    (0..n_tracks)
        .map(|id| {
            let mut t = Track::new(id as u32, ObjectClass::Car);
            let mut x = next() * w;
            let mut y = next() * h;
            let start = (next() * 20.0) as usize;
            let dets = 2 + (next() * 6.0) as usize;
            for k in 0..dets {
                t.push(
                    start + k * 3,
                    Detection {
                        rect: Rect::new(x, y, 12.0, 8.0),
                        class: ObjectClass::Car,
                        confidence: 0.9,
                        appearance: vec![],
                        debug_gt: None,
                    },
                );
                x = (x + (next() - 0.5) * 60.0).clamp(0.0, w);
                y = (y + (next() - 0.5) * 60.0).clamp(0.0, h);
            }
            t
        })
        .collect()
}

proptest! {
    #[test]
    fn random_stores_serve_identical_bytes_at_any_concurrency(
        seed in 0u64..u64::MAX,
        shape in ((1usize..4), (0usize..7)),
    ) {
        let (n_clips, n_tracks) = shape;
        let dir = temp_dir(&format!("prop-{seed:x}"));
        let mut store = TrackStore::create(&dir).unwrap();
        for c in 0..n_clips {
            let tracks = synth_tracks(
                seed ^ (c as u64).wrapping_mul(0x517c_c1b7_2722_0a95),
                n_tracks,
                640.0,
                352.0,
            );
            let info = ClipInfo { num_frames: 60, fps: 10.0, width: 640.0, height: 352.0 };
            store.ingest_clip(&info, &tracks).unwrap();
        }
        let store = Arc::new(store);
        let workload = mixed_workload(store.metas(), 1, seed);
        let reference = answers(
            &QueryServer::new(Arc::clone(&store), 16),
            &workload,
            &ServeOptions { threads: 1, pruning: false, cache: CacheMode::Off },
        );
        for threads in [2usize, 8] {
            let server = QueryServer::new(Arc::clone(&store), 16);
            let cold = answers(
                &server,
                &workload,
                &ServeOptions { threads, pruning: true, cache: CacheMode::On },
            );
            let warm = answers(
                &server,
                &workload,
                &ServeOptions { threads, pruning: true, cache: CacheMode::Verify },
            );
            prop_assert!(cold == reference);
            prop_assert!(warm == reference);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
