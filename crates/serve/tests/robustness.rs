//! The durability and overload-robustness contract, end to end:
//!
//! - **journal-replay round-trip (property)** — a random ingest
//!   sequence crashed at a random I/O point always recovers via
//!   `fsck --repair` to a consistent store holding every acknowledged
//!   clip byte-identically;
//! - **threads × shed-policy matrix** — per-query answer bytes of every
//!   non-degraded answer are identical across worker-thread counts and
//!   overload policies;
//! - **quarantine** — a corrupted clip file degrades robust execution
//!   to a self-marking approximate answer, hard-errors strict
//!   execution, and stays quarantined across reopen;
//! - **transient reads** — bounded deterministic retry heals transient
//!   faults and charges the virtual backoff schedule, never wall-clock.

use otif_cv::Detection;
use otif_geom::Rect;
use otif_serve::{
    fsck, mixed_workload, run_workload_traced, Answer, CacheMode, ClipInfo, FaultyIo,
    OverloadPolicy, QueryServer, RealIo, ServeError, ServeOptions, ServeQuery, StoreError,
    StoreFaultPlan, StoreIo, StoreOp, StoreOptions, TrackStore,
};
use otif_sim::ObjectClass;
use otif_track::Track;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("otif-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Random-walk synthetic tracks from a seeded LCG.
fn synth_tracks(seed: u64, n_tracks: usize) -> Vec<Track> {
    let (w, h) = (640.0f32, 352.0f32);
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f32 / (1u64 << 31) as f32
    };
    (0..n_tracks)
        .map(|id| {
            let mut t = Track::new(id as u32, ObjectClass::Car);
            let mut x = next() * w;
            let mut y = next() * h;
            let start = (next() * 20.0) as usize;
            for k in 0..2 + (next() * 6.0) as usize {
                t.push(
                    start + k * 3,
                    Detection {
                        rect: Rect::new(x, y, 12.0, 8.0),
                        class: ObjectClass::Car,
                        confidence: 0.9,
                        appearance: vec![],
                        debug_gt: None,
                    },
                );
                x = (x + (next() - 0.5) * 60.0).clamp(0.0, w);
                y = (y + (next() - 0.5) * 60.0).clamp(0.0, h);
            }
            t
        })
        .collect()
}

fn info() -> ClipInfo {
    ClipInfo {
        num_frames: 60,
        fps: 10.0,
        width: 640.0,
        height: 352.0,
    }
}

/// Build a clean store at `dir` holding `per_clip` (pre-generated
/// per-clip track lists).
fn build_store(dir: &Path, per_clip: &[Vec<Track>]) -> TrackStore {
    let mut store = TrackStore::create(dir).unwrap();
    for tracks in per_clip {
        store.ingest_clip(&info(), tracks).unwrap();
    }
    store
}

// A random ingest sequence crashed at a random point of its I/O trace
// recovers through journal replay to exactly the acknowledged prefix
// (or the durable superset of it — a record can land before the ack
// returns), byte for byte.
proptest! {
    #[test]
    fn crashed_ingests_recover_to_a_consistent_store(
        seed in 0u64..u64::MAX,
        n_clips in 1usize..5,
        op_pick in 0usize..3,
        ordinal_pick in 0u64..10_000,
    ) {
        let per_clip: Vec<Vec<Track>> = (0..n_clips)
            .map(|c| synth_tracks(seed ^ (c as u64).wrapping_mul(0x517c_c1b7_2722_0a95), 1 + c % 4))
            .collect();

        // fault-free counting run: the I/O trace the crash indexes into
        let count_dir = temp_dir(&format!("count-{seed:x}"));
        let counter = Arc::new(FaultyIo::new(RealIo, StoreFaultPlan::none()));
        {
            let mut store = TrackStore::create_with(
                &count_dir, Arc::clone(&counter) as Arc<dyn StoreIo>, StoreOptions::default(),
            ).unwrap();
            for tracks in &per_clip {
                store.ingest_clip(&info(), tracks).unwrap();
            }
        }
        let op = [StoreOp::Write, StoreOp::Rename, StoreOp::Append][op_pick];
        let total = counter.ops()[&op];
        let ordinal = ordinal_pick % total;

        // the crashed run
        let dir = temp_dir(&format!("crash-{seed:x}"));
        let mut acked = 0usize;
        if let Ok(mut store) = TrackStore::create_with(
            &dir,
            Arc::new(FaultyIo::new(RealIo, StoreFaultPlan::crash_at(op, ordinal))),
            StoreOptions::default(),
        ) {
            for tracks in &per_clip {
                match store.ingest_clip(&info(), tracks) {
                    Ok(_) => acked += 1,
                    Err(_) => break,
                }
            }
        }

        // recovery: repair, reopen, compare payloads to the originals
        let report = fsck(&dir, true).unwrap();
        prop_assert!(report.missing_clips.is_empty(),
            "acknowledged clips lost: {:?}", report.missing_clips);
        if dir.join("journal.log").exists() {
            let store = TrackStore::open(&dir).unwrap();
            prop_assert!(store.len() >= acked,
                "{acked} acked but only {} recovered", store.len());
            for (id, tracks) in per_clip.iter().take(store.len()).enumerate() {
                let loaded = store.load(id).unwrap();
                prop_assert_eq!(
                    serde_json::to_string(&loaded.tracks).unwrap(),
                    serde_json::to_string(tracks).unwrap(),
                    "clip {} drifted through crash recovery", id
                );
            }
            // a second fsck over the repaired store finds nothing
            let clean = fsck(&dir, false).unwrap();
            prop_assert!(clean.healthy(), "repair must converge");
        } else {
            prop_assert_eq!(acked, 0, "journal gone but ingests were acked");
        }
        std::fs::remove_dir_all(&count_dir).ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Non-degraded answers are byte-identical per query across worker
/// thread counts and overload policies (shed-capable or permissive),
/// cold or warm.
#[test]
fn thread_and_shed_matrix_preserves_exact_answer_bytes() {
    let dir = temp_dir("matrix");
    let per_clip: Vec<Vec<Track>> = (0..3).map(|c| synth_tracks(977 + c as u64, 3)).collect();
    let store = Arc::new(build_store(&dir, &per_clip));
    let workload = mixed_workload(store.metas(), 2, 7);

    // reference: permissive policy, single client, single thread
    let ref_server = QueryServer::new(Arc::clone(&store), 64);
    let (ref_run, ref_traces) = run_workload_traced(
        &ref_server,
        &workload,
        1,
        &ServeOptions {
            threads: 1,
            pruning: true,
            cache: CacheMode::On,
        },
    )
    .unwrap();
    assert_eq!(ref_run.degraded, 0, "permissive run must not degrade");

    let policies = [
        OverloadPolicy::default(),
        OverloadPolicy {
            max_concurrent: 1,
            max_queue: 2,
            deadline: Some(Duration::from_millis(250)),
        },
        OverloadPolicy {
            max_concurrent: 2,
            max_queue: 0,
            deadline: None,
        },
    ];
    for (pi, policy) in policies.iter().enumerate() {
        for threads in [1usize, 2, 8] {
            let server = QueryServer::with_policy(Arc::clone(&store), 64, *policy);
            for pass in ["cold", "warm"] {
                let (run, traces) = run_workload_traced(
                    &server,
                    &workload,
                    4,
                    &ServeOptions {
                        threads,
                        pruning: true,
                        cache: CacheMode::On,
                    },
                )
                .unwrap();
                let exact = traces.iter().filter(|t| !t.degraded).count();
                assert!(
                    exact > 0,
                    "policy {pi} threads {threads} {pass}: every answer degraded"
                );
                for (i, (t, r)) in traces.iter().zip(&ref_traces).enumerate() {
                    if !t.degraded {
                        assert_eq!(
                            t.fingerprint, r.fingerprint,
                            "policy {pi} threads {threads} {pass} query {i}: \
                             exact answer bytes drifted"
                        );
                    }
                }
                if policy.max_concurrent == 0 {
                    assert_eq!(
                        run.answers_fingerprint, ref_run.answers_fingerprint,
                        "permissive runs must be byte-identical wholesale"
                    );
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt clip payload: strict execution errors, robust execution
/// degrades to a self-marking approximate answer, and the quarantine
/// marker survives reopen.
#[test]
fn corrupt_clip_quarantines_and_degrades() {
    let dir = temp_dir("quarantine");
    let per_clip: Vec<Vec<Track>> = (0..2).map(|c| synth_tracks(31 + c as u64, 2)).collect();
    build_store(&dir, &per_clip);
    // flip the payload of clip 0 behind the store's back
    let victim = dir.join("clips").join("clip_0.json");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    std::fs::write(&victim, &bytes).unwrap();

    let store = Arc::new(TrackStore::open(&dir).unwrap());
    let server = QueryServer::new(Arc::clone(&store), 64);
    let q = ServeQuery::Track(otif_query::TrackQuery::Count);
    let opts = ServeOptions {
        threads: 1,
        pruning: true,
        cache: CacheMode::On,
    };

    let outcome = server.execute_robust(&q, &opts).unwrap();
    let reason = outcome.degraded.expect("corrupt clip must degrade");
    assert!(reason.contains("quarantine"), "reason was {reason:?}");
    match Answer::from_bytes(&outcome.bytes) {
        Answer::Approximate { rows, .. } => assert_eq!(rows.len(), 2, "one row per clip"),
        other => panic!("degraded answer must self-mark, got {other:?}"),
    }
    assert!(store.is_quarantined(0));
    assert!(!store.is_quarantined(1));

    // strict path refuses
    match server.execute_bytes(&q, &opts) {
        Err(ServeError::Store(StoreError::Quarantined { clip })) => assert_eq!(clip, 0),
        other => panic!("strict execution must error on quarantine, got {other:?}"),
    }

    // the marker is a directory entry, not in-memory state
    drop(server);
    let reopened = TrackStore::open(&dir).unwrap();
    assert!(reopened.is_quarantined(0), "quarantine must survive reopen");
    // fsck reports it without declaring data loss
    let report = fsck(&dir, false).unwrap();
    assert!(report.consistent(), "quarantine is not an inconsistency");
    assert_eq!(report.already_quarantined, vec![0]);
    std::fs::remove_dir_all(&dir).ok();
}

/// Transient read faults heal through the bounded deterministic
/// retry/backoff schedule; exhausted retries surface the error.
#[test]
fn transient_reads_heal_within_the_retry_budget() {
    let dir = temp_dir("transient");
    let per_clip = vec![synth_tracks(5, 2)];
    build_store(&dir, &per_clip);

    // read 0 is the journal on open; the clip read fails twice, healing
    // on the third attempt — inside the default budget of 2 retries
    let opts = StoreOptions::default();
    let store = TrackStore::open_with(
        &dir,
        Arc::new(FaultyIo::new(RealIo, StoreFaultPlan::transient_reads(1, 2))),
        opts,
    )
    .unwrap();
    let loaded = store.load(0).unwrap();
    assert_eq!(
        serde_json::to_string(&loaded.tracks).unwrap(),
        serde_json::to_string(&per_clip[0]).unwrap()
    );
    assert_eq!(store.read_retry_count(), 2);
    let expected: f64 = (0..2u32)
        .map(|a| otif_serve::retry_backoff(opts.backoff_base_seconds, a))
        .sum();
    assert!(
        (store.retry_backoff_seconds() - expected).abs() < 1e-12,
        "virtual backoff {} != schedule {expected}",
        store.retry_backoff_seconds()
    );

    // three consecutive failures exhaust the budget
    let store = TrackStore::open_with(
        &dir,
        Arc::new(FaultyIo::new(RealIo, StoreFaultPlan::transient_reads(1, 3))),
        StoreOptions::default(),
    )
    .unwrap();
    assert!(matches!(store.load(0), Err(StoreError::Io { .. })));
    std::fs::remove_dir_all(&dir).ok();
}

/// A zero deadline degrades every query to a catalog-only answer that
/// decodes as approximate — and is never cached.
#[test]
fn expired_deadline_degrades_and_bypasses_the_cache() {
    let dir = temp_dir("deadline");
    let per_clip = vec![synth_tracks(11, 2)];
    let store = Arc::new(build_store(&dir, &per_clip));
    let server = QueryServer::with_policy(
        Arc::clone(&store),
        64,
        OverloadPolicy {
            max_concurrent: 0,
            max_queue: 0,
            deadline: Some(Duration::ZERO),
        },
    );
    let q = ServeQuery::Aggregate(otif_query::AggregateQuery::PeakOccupancy);
    let opts = ServeOptions {
        threads: 1,
        pruning: true,
        cache: CacheMode::On,
    };
    let outcome = server.execute_robust(&q, &opts).unwrap();
    assert!(outcome.degraded.unwrap().contains("deadline"));
    assert!(Answer::from_bytes(&outcome.bytes).is_approximate());
    // a repeat of the same query must not be served from the cache —
    // the degraded answer was never inserted
    let again = server.execute_robust(&q, &opts).unwrap();
    assert!(again.degraded.is_some());
    let stats = server.stats();
    assert_eq!(stats.degraded_answers, 2);
    assert_eq!(stats.cache.bypasses, 2, "degraded answers are never cached");
    assert_eq!(stats.cache.hits, 0, "nothing was cached to hit");
    std::fs::remove_dir_all(&dir).ok();
}
