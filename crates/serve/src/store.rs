//! The persistent track store: an on-disk clip catalog with per-clip
//! spatial and temporal indexes, loaded lazily.
//!
//! Layout under the store directory:
//!
//! ```text
//! store/
//!   catalog.json          # Vec<ClipMeta>: per-clip summaries + fingerprints
//!   clips/clip_<id>.json  # Vec<Track>: the clip's extracted tracks
//! ```
//!
//! The catalog is small and always resident; it carries everything clip
//! pruning needs (occupied spatial cells of the track geometry, the
//! maximum number of concurrently alive tracks, frame count, frame
//! rate) so a query decides *which* clip files to deserialize without
//! touching any of them. Track geometry is rasterized segment-by-segment
//! at half-cell steps before cells are marked, so positions interpolated
//! between detections (what the frame-limit operators actually query)
//! are covered by the occupancy summary up to half a cell of error —
//! pruning rules must (and do) budget that slack.

use otif_geom::{GridIndex, Point, Rect};
use otif_track::Track;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Frame-level metadata the ingester must supply per clip (the serving
/// tier never sees the simulator's `Clip`, only its dimensions).
#[derive(Debug, Clone, Copy)]
pub struct ClipInfo {
    /// Number of frames in the clip.
    pub num_frames: usize,
    /// Frame rate.
    pub fps: f32,
    /// Native frame width in pixels.
    pub width: f32,
    /// Native frame height in pixels.
    pub height: f32,
}

/// Catalog entry for one ingested clip: identity, dimensions, and the
/// compact spatial/temporal summaries used for index-driven pruning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClipMeta {
    /// Clip id — dense, assigned at ingest in ingest order.
    pub id: usize,
    /// Number of frames.
    pub num_frames: usize,
    /// Frame rate.
    pub fps: f32,
    /// Native frame width in pixels.
    pub width: f32,
    /// Native frame height in pixels.
    pub height: f32,
    /// Number of extracted tracks.
    pub num_tracks: usize,
    /// Maximum number of tracks alive at the same frame (temporal
    /// interval summary). A frame-limit query demanding ≥ n objects can
    /// never match a clip with fewer than n concurrent tracks.
    pub max_concurrent_tracks: usize,
    /// FNV-1a over the clip's serialized tracks; feeds the clip-set
    /// fingerprint that keys the answer cache.
    pub fingerprint: u64,
    /// Side of the square summary cells, in native pixels.
    pub cell_size: f32,
    /// Sorted `(col, row)` cells touched by rasterized track geometry.
    pub occupied_cells: Vec<(u32, u32)>,
}

impl ClipMeta {
    /// Whether any occupied cell's rectangle — inflated by the half-cell
    /// rasterization slack — intersects `rect`. Sound for pruning: if
    /// this is false, no (possibly interpolated) track position lies in
    /// `rect`.
    pub fn geometry_intersects(&self, rect: &Rect) -> bool {
        let slack = self.cell_size * 0.5;
        self.occupied_cells.iter().any(|&(cx, cy)| {
            let cell = Rect::new(
                cx as f32 * self.cell_size - slack,
                cy as f32 * self.cell_size - slack,
                self.cell_size + 2.0 * slack,
                self.cell_size + 2.0 * slack,
            );
            cell.intersects(rect)
        })
    }
}

/// A clip resident in memory: tracks plus the two per-clip indexes,
/// built on load.
pub struct LoadedClip {
    /// Catalog entry.
    pub meta: ClipMeta,
    /// The clip's extracted tracks, in stored order.
    pub tracks: Vec<Track>,
    /// Spatial index over rasterized track geometry; payload is the
    /// position of the owning track in `tracks`.
    pub index: GridIndex<u32>,
    /// Temporal interval index: `(first_frame, last_frame)` per track,
    /// sorted by first frame.
    pub intervals: Vec<(usize, usize)>,
}

impl LoadedClip {
    fn build(meta: ClipMeta, tracks: Vec<Track>) -> LoadedClip {
        let mut index = GridIndex::new(
            meta.width.max(1.0),
            meta.height.max(1.0),
            meta.cell_size.max(1.0),
        );
        for (ti, t) in tracks.iter().enumerate() {
            for p in rasterize_track(t, meta.cell_size * 0.5) {
                index.insert(p, ti as u32);
            }
        }
        let mut intervals: Vec<(usize, usize)> = tracks
            .iter()
            .filter(|t| !t.is_empty())
            .map(|t| (t.first_frame(), t.last_frame()))
            .collect();
        intervals.sort_unstable();
        LoadedClip {
            meta,
            tracks,
            index,
            intervals,
        }
    }

    /// Index-driven hot-spot prefilter: can *any* frame of this clip
    /// contain `n` objects within `radius` of one of them?
    ///
    /// At a matching frame, n distinct tracks have (interpolated)
    /// positions within `radius` of a center that is itself one of the
    /// positions. Every interpolated position is within half a cell of a
    /// rasterized index point of its track, so querying the index around
    /// each stored point with `radius + cell_size` (two half-cell
    /// slacks) and counting distinct track ids is a sound necessary
    /// condition — when it never reaches `n`, the per-frame scan is
    /// skipped entirely. Time is ignored, which only over-approximates.
    pub fn hotspot_candidate(&self, radius: f32, n: usize) -> bool {
        if n <= 1 {
            return !self.tracks.is_empty();
        }
        if self.meta.max_concurrent_tracks < n {
            return false;
        }
        let slack = self.meta.cell_size;
        let mut seen: Vec<bool> = vec![false; self.tracks.len()];
        for (ti, t) in self.tracks.iter().enumerate() {
            for (_, d) in &t.dets {
                let center = d.rect.center();
                let near = self.index.query_circle(&center, radius + slack);
                for s in seen.iter_mut() {
                    *s = false;
                }
                let mut distinct = 0usize;
                for (_, id) in near {
                    let id = id as usize;
                    if !seen[id] {
                        seen[id] = true;
                        distinct += 1;
                        if distinct >= n {
                            return true;
                        }
                    }
                }
                let _ = ti;
            }
        }
        false
    }
}

/// Sample points along a track's center polyline at `step` px so every
/// interpolated position is within `step / 2` of a sample.
fn rasterize_track(t: &Track, step: f32) -> Vec<Point> {
    let step = step.max(0.5);
    let centers: Vec<Point> = t.dets.iter().map(|(_, d)| d.rect.center()).collect();
    let mut out = Vec::new();
    match centers.len() {
        0 => {}
        1 => out.push(centers[0]),
        _ => {
            for w in centers.windows(2) {
                let (a, b) = (w[0], w[1]);
                let n = (a.dist(&b) / step).ceil().max(1.0) as usize;
                for k in 0..n {
                    out.push(a.lerp(&b, k as f32 / n as f32));
                }
            }
            out.push(*centers.last().unwrap());
        }
    }
    out
}

/// FNV-1a 64-bit over a byte slice — stable across runs and platforms.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Maximum number of overlapping `(first, last)` intervals.
fn max_concurrent(tracks: &[Track]) -> usize {
    let mut events: Vec<(usize, i32)> = Vec::with_capacity(tracks.len() * 2);
    for t in tracks.iter().filter(|t| !t.is_empty()) {
        events.push((t.first_frame(), 1));
        events.push((t.last_frame() + 1, -1));
    }
    events.sort_unstable();
    let (mut cur, mut peak) = (0i64, 0i64);
    for (_, d) in events {
        cur += d as i64;
        peak = peak.max(cur);
    }
    peak as usize
}

const CATALOG_FILE: &str = "catalog.json";

/// The persistent track store. Cheap always-resident catalog; clip
/// payloads (tracks + indexes) deserialized lazily per clip and cached.
pub struct TrackStore {
    dir: PathBuf,
    catalog: Vec<ClipMeta>,
    loaded: Mutex<HashMap<usize, Arc<LoadedClip>>>,
    loads: AtomicU64,
}

impl TrackStore {
    /// Create an empty store at `dir` (the directory is created; an
    /// existing catalog there is an error — stores are append-only).
    pub fn create(dir: &Path) -> Result<TrackStore, String> {
        let catalog_path = dir.join(CATALOG_FILE);
        if catalog_path.exists() {
            return Err(format!(
                "{} already exists; open() it instead",
                catalog_path.display()
            ));
        }
        std::fs::create_dir_all(dir.join("clips"))
            .map_err(|e| format!("{}: {e}", dir.display()))?;
        let store = TrackStore {
            dir: dir.to_path_buf(),
            catalog: Vec::new(),
            loaded: Mutex::new(HashMap::new()),
            loads: AtomicU64::new(0),
        };
        store.write_catalog()?;
        Ok(store)
    }

    /// Open an existing store.
    pub fn open(dir: &Path) -> Result<TrackStore, String> {
        let path = dir.join(CATALOG_FILE);
        let json =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let catalog: Vec<ClipMeta> =
            serde_json::from_str(&json).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(TrackStore {
            dir: dir.to_path_buf(),
            catalog,
            loaded: Mutex::new(HashMap::new()),
            loads: AtomicU64::new(0),
        })
    }

    fn write_catalog(&self) -> Result<(), String> {
        let path = self.dir.join(CATALOG_FILE);
        let json = serde_json::to_string(&self.catalog).map_err(|e| e.to_string())?;
        std::fs::write(&path, json).map_err(|e| format!("{}: {e}", path.display()))
    }

    fn clip_path(&self, id: usize) -> PathBuf {
        self.dir.join("clips").join(format!("clip_{id}.json"))
    }

    /// Cell side used for a clip's spatial summary: coarse enough that
    /// the catalog stays small, fine enough that corner-region pruning
    /// discriminates (≈ 48×48 cells over the larger frame dimension).
    fn cell_size_for(info: &ClipInfo) -> f32 {
        (info.width.max(info.height) / 48.0).max(4.0)
    }

    /// Ingest one clip's extracted tracks (`Engine` / `Pipeline` output
    /// order is preserved). Returns the assigned clip id.
    pub fn ingest_clip(&mut self, info: &ClipInfo, tracks: &[Track]) -> Result<usize, String> {
        let id = self.catalog.len();
        let json = serde_json::to_string(tracks).map_err(|e| e.to_string())?;
        let fingerprint = fnv1a(json.as_bytes());

        let cell_size = Self::cell_size_for(info);
        let cols = (info.width / cell_size).ceil().max(1.0) as u32;
        let rows = (info.height / cell_size).ceil().max(1.0) as u32;
        let mut cells: Vec<(u32, u32)> = Vec::new();
        for t in tracks {
            for p in rasterize_track(t, cell_size * 0.5) {
                let cx = ((p.x / cell_size).floor() as i64).clamp(0, cols as i64 - 1) as u32;
                let cy = ((p.y / cell_size).floor() as i64).clamp(0, rows as i64 - 1) as u32;
                cells.push((cx, cy));
            }
        }
        cells.sort_unstable();
        cells.dedup();

        let path = self.clip_path(id);
        std::fs::write(&path, &json).map_err(|e| format!("{}: {e}", path.display()))?;
        self.catalog.push(ClipMeta {
            id,
            num_frames: info.num_frames,
            fps: info.fps,
            width: info.width,
            height: info.height,
            num_tracks: tracks.len(),
            max_concurrent_tracks: max_concurrent(tracks),
            fingerprint,
            cell_size,
            occupied_cells: cells,
        });
        self.write_catalog()?;
        Ok(id)
    }

    /// Catalog entries, in clip-id order.
    pub fn metas(&self) -> &[ClipMeta] {
        &self.catalog
    }

    /// Number of ingested clips.
    pub fn len(&self) -> usize {
        self.catalog.len()
    }

    /// Whether the store holds no clips.
    pub fn is_empty(&self) -> bool {
        self.catalog.is_empty()
    }

    /// Clip-set fingerprint: FNV-1a over every clip's id and content
    /// fingerprint, in id order. Any ingest changes it, invalidating all
    /// cached answers keyed against the previous clip set.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.catalog.len() * 16);
        for m in &self.catalog {
            bytes.extend_from_slice(&(m.id as u64).to_le_bytes());
            bytes.extend_from_slice(&m.fingerprint.to_le_bytes());
        }
        fnv1a(&bytes)
    }

    /// Load a clip (lazily; cached). Concurrent callers may race on the
    /// first load of the same clip — exactly one result wins the cache
    /// and `clip_loads` counts file reads that won.
    pub fn load(&self, id: usize) -> Result<Arc<LoadedClip>, String> {
        if let Some(c) = self.loaded.lock().unwrap().get(&id) {
            return Ok(Arc::clone(c));
        }
        let meta = self
            .catalog
            .get(id)
            .ok_or_else(|| format!("clip {id} is not in the catalog"))?
            .clone();
        let path = self.clip_path(id);
        let json =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let tracks: Vec<Track> =
            serde_json::from_str(&json).map_err(|e| format!("{}: {e}", path.display()))?;
        let built = Arc::new(LoadedClip::build(meta, tracks));
        let mut cache = self.loaded.lock().unwrap();
        let entry = cache.entry(id).or_insert_with(|| {
            self.loads.fetch_add(1, Ordering::Relaxed);
            Arc::clone(&built)
        });
        Ok(Arc::clone(entry))
    }

    /// Number of clip files actually deserialized so far (cache-winning
    /// loads). The pruning benches assert on this.
    pub fn clip_loads(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Drop every cached clip payload (cold-cache benchmarking).
    pub fn evict_clips(&self) {
        self.loaded.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_cv::Detection;
    use otif_sim::ObjectClass;

    fn det(x: f32, y: f32) -> Detection {
        Detection {
            rect: Rect::new(x - 5.0, y - 3.0, 10.0, 6.0),
            class: ObjectClass::Car,
            confidence: 0.9,
            appearance: vec![],
            debug_gt: None,
        }
    }

    fn track(id: u32, pts: &[(usize, f32, f32)]) -> Track {
        let mut t = Track::new(id, ObjectClass::Car);
        for &(f, x, y) in pts {
            t.push(f, det(x, y));
        }
        t
    }

    fn info() -> ClipInfo {
        ClipInfo {
            num_frames: 100,
            fps: 10.0,
            width: 640.0,
            height: 352.0,
        }
    }

    #[test]
    fn ingest_load_roundtrip_preserves_tracks() {
        let dir = std::env::temp_dir().join(format!("otif-store-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = TrackStore::create(&dir).unwrap();
        let tracks = vec![
            track(0, &[(0, 10.0, 10.0), (50, 600.0, 300.0)]),
            track(1, &[(20, 320.0, 176.0), (80, 10.0, 340.0)]),
        ];
        let id = store.ingest_clip(&info(), &tracks).unwrap();
        // round-trip through a fresh open (no warm in-memory state)
        let store = TrackStore::open(&dir).unwrap();
        let loaded = store.load(id).unwrap();
        assert_eq!(
            serde_json::to_string(&loaded.tracks).unwrap(),
            serde_json::to_string(&tracks).unwrap(),
            "ingest → load must be lossless"
        );
        assert_eq!(store.clip_loads(), 1);
        store.load(id).unwrap();
        assert_eq!(store.clip_loads(), 1, "second load is cached");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn occupancy_covers_interpolated_geometry() {
        let dir = std::env::temp_dir().join(format!("otif-store-occ-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = TrackStore::create(&dir).unwrap();
        // A diagonal track with only two detections: the midpoint is
        // interpolated, far from either endpoint.
        let tracks = vec![track(0, &[(0, 10.0, 10.0), (99, 630.0, 340.0)])];
        let id = store.ingest_clip(&info(), &tracks).unwrap();
        let meta = &store.metas()[id];
        let mid = Rect::new(315.0, 170.0, 10.0, 10.0);
        assert!(
            meta.geometry_intersects(&mid),
            "rasterized cells must cover the interpolated midpoint"
        );
        let off = Rect::new(600.0, 10.0, 30.0, 30.0);
        assert!(
            !meta.geometry_intersects(&off),
            "opposite corner stays unoccupied"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_concurrent_and_fingerprint() {
        let tracks = vec![
            track(0, &[(0, 1.0, 1.0), (10, 2.0, 2.0)]),
            track(1, &[(5, 1.0, 1.0), (15, 2.0, 2.0)]),
            track(2, &[(11, 1.0, 1.0), (20, 2.0, 2.0)]),
        ];
        assert_eq!(max_concurrent(&tracks), 2);
        let a = fnv1a(b"hello");
        let b = fnv1a(b"hellp");
        assert_ne!(a, b);
        assert_eq!(a, fnv1a(b"hello"));
    }

    #[test]
    fn ingest_changes_store_fingerprint() {
        let dir = std::env::temp_dir().join(format!("otif-store-fp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = TrackStore::create(&dir).unwrap();
        store
            .ingest_clip(&info(), &[track(0, &[(0, 1.0, 1.0), (5, 9.0, 9.0)])])
            .unwrap();
        let f1 = store.fingerprint();
        store
            .ingest_clip(&info(), &[track(0, &[(0, 2.0, 2.0), (5, 8.0, 8.0)])])
            .unwrap();
        assert_ne!(f1, store.fingerprint());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hotspot_candidate_detects_clusters_and_rejects_spread() {
        // two tracks that pass close together
        let close = LoadedClip::build(
            ClipMeta {
                id: 0,
                num_frames: 100,
                fps: 10.0,
                width: 640.0,
                height: 352.0,
                num_tracks: 2,
                max_concurrent_tracks: 2,
                fingerprint: 0,
                cell_size: 13.0,
                occupied_cells: vec![],
            },
            vec![
                track(0, &[(0, 100.0, 100.0), (50, 110.0, 100.0)]),
                track(1, &[(0, 105.0, 105.0), (50, 115.0, 105.0)]),
            ],
        );
        assert!(close.hotspot_candidate(30.0, 2));
        // two tracks in opposite corners
        let far = LoadedClip::build(
            ClipMeta {
                id: 1,
                num_frames: 100,
                fps: 10.0,
                width: 640.0,
                height: 352.0,
                num_tracks: 2,
                max_concurrent_tracks: 2,
                fingerprint: 0,
                cell_size: 13.0,
                occupied_cells: vec![],
            },
            vec![
                track(0, &[(0, 10.0, 10.0), (50, 40.0, 10.0)]),
                track(1, &[(0, 600.0, 340.0), (50, 630.0, 340.0)]),
            ],
        );
        assert!(!far.hotspot_candidate(30.0, 2));
        assert!(far.hotspot_candidate(30.0, 1), "n=1 only needs any track");
    }
}
