//! The persistent track store: an on-disk clip catalog with per-clip
//! spatial and temporal indexes, loaded lazily — now crash-consistent.
//!
//! Layout under the store directory:
//!
//! ```text
//! store/
//!   journal.log           # append-only ingest journal (authoritative)
//!   catalog.json          # rewritable checkpoint of the same entries
//!   clips/clip_<id>.json  # Vec<Track>: the clip's extracted tracks
//!   quarantine/           # clip files that failed verification
//! ```
//!
//! Durability model (DESIGN.md §13): an ingest writes the clip payload
//! to a tmp file, fsyncs, atomically renames it into `clips/`, and only
//! then appends a checksummed record to the journal — the append is the
//! acknowledgement point. Because the payload is in place before its
//! record is durable, every valid journal record refers to an existing
//! clip file: a crash at *any* intermediate step loses only the
//! unacknowledged ingest (recoverable debris that [`fsck`] removes),
//! never an acknowledged one. `catalog.json` is a best-effort
//! checkpoint; [`TrackStore::open`] replays the journal whenever one
//! exists. Every [`TrackStore::load`] re-verifies the payload's FNV-1a
//! fingerprint against its catalog entry and quarantines mismatches.
//!
//! The catalog is small and always resident; it carries everything clip
//! pruning needs (occupied spatial cells of the track geometry, the
//! maximum number of concurrently alive tracks, frame count, frame
//! rate) so a query decides *which* clip files to deserialize without
//! touching any of them. Track geometry is rasterized segment-by-segment
//! at half-cell steps before cells are marked, so positions interpolated
//! between detections (what the frame-limit operators actually query)
//! are covered by the occupancy summary up to half a cell of error —
//! pruning rules must (and do) budget that slack.

use crate::io::{RealIo, StoreError, StoreIo};
use crate::journal::{self, JOURNAL_FILE};
use otif_geom::{GridIndex, Point, Rect};
use otif_track::Track;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Frame-level metadata the ingester must supply per clip (the serving
/// tier never sees the simulator's `Clip`, only its dimensions).
#[derive(Debug, Clone, Copy)]
pub struct ClipInfo {
    /// Number of frames in the clip.
    pub num_frames: usize,
    /// Frame rate.
    pub fps: f32,
    /// Native frame width in pixels.
    pub width: f32,
    /// Native frame height in pixels.
    pub height: f32,
}

/// Catalog entry for one ingested clip: identity, dimensions, and the
/// compact spatial/temporal summaries used for index-driven pruning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClipMeta {
    /// Clip id — dense, assigned at ingest in ingest order.
    pub id: usize,
    /// Number of frames.
    pub num_frames: usize,
    /// Frame rate.
    pub fps: f32,
    /// Native frame width in pixels.
    pub width: f32,
    /// Native frame height in pixels.
    pub height: f32,
    /// Number of extracted tracks.
    pub num_tracks: usize,
    /// Maximum number of tracks alive at the same frame (temporal
    /// interval summary). A frame-limit query demanding ≥ n objects can
    /// never match a clip with fewer than n concurrent tracks.
    pub max_concurrent_tracks: usize,
    /// FNV-1a over the clip's serialized tracks; feeds the clip-set
    /// fingerprint that keys the answer cache and is re-verified on
    /// every load.
    pub fingerprint: u64,
    /// Side of the square summary cells, in native pixels.
    pub cell_size: f32,
    /// Sorted `(col, row)` cells touched by rasterized track geometry.
    pub occupied_cells: Vec<(u32, u32)>,
    /// Ingest source key (e.g. `<dataset>/<clip index>` from the engine
    /// run that produced the tracks). Keyed re-ingest of the same
    /// source with the same content fingerprint dedupes instead of
    /// appending, making engine→store handoff exactly-once across
    /// crash/resume. `None` for unkeyed (legacy) ingests, which always
    /// append.
    pub source: Option<String>,
}

impl ClipMeta {
    /// Whether any occupied cell's rectangle — inflated by the half-cell
    /// rasterization slack — intersects `rect`. Sound for pruning: if
    /// this is false, no (possibly interpolated) track position lies in
    /// `rect`.
    pub fn geometry_intersects(&self, rect: &Rect) -> bool {
        let slack = self.cell_size * 0.5;
        self.occupied_cells.iter().any(|&(cx, cy)| {
            let cell = Rect::new(
                cx as f32 * self.cell_size - slack,
                cy as f32 * self.cell_size - slack,
                self.cell_size + 2.0 * slack,
                self.cell_size + 2.0 * slack,
            );
            cell.intersects(rect)
        })
    }
}

/// A clip resident in memory: tracks plus the two per-clip indexes,
/// built on load.
pub struct LoadedClip {
    /// Catalog entry.
    pub meta: ClipMeta,
    /// The clip's extracted tracks, in stored order.
    pub tracks: Vec<Track>,
    /// Spatial index over rasterized track geometry; payload is the
    /// position of the owning track in `tracks`.
    pub index: GridIndex<u32>,
    /// Temporal interval index: `(first_frame, last_frame)` per track,
    /// sorted by first frame.
    pub intervals: Vec<(usize, usize)>,
}

impl LoadedClip {
    fn build(meta: ClipMeta, tracks: Vec<Track>) -> LoadedClip {
        let mut index = GridIndex::new(
            meta.width.max(1.0),
            meta.height.max(1.0),
            meta.cell_size.max(1.0),
        );
        for (ti, t) in tracks.iter().enumerate() {
            for p in rasterize_track(t, meta.cell_size * 0.5) {
                index.insert(p, ti as u32);
            }
        }
        let mut intervals: Vec<(usize, usize)> = tracks
            .iter()
            .filter(|t| !t.is_empty())
            .map(|t| (t.first_frame(), t.last_frame()))
            .collect();
        intervals.sort_unstable();
        LoadedClip {
            meta,
            tracks,
            index,
            intervals,
        }
    }

    /// Index-driven hot-spot prefilter: can *any* frame of this clip
    /// contain `n` objects within `radius` of one of them?
    ///
    /// At a matching frame, n distinct tracks have (interpolated)
    /// positions within `radius` of a center that is itself one of the
    /// positions. Every interpolated position is within half a cell of a
    /// rasterized index point of its track, so querying the index around
    /// each stored point with `radius + cell_size` (two half-cell
    /// slacks) and counting distinct track ids is a sound necessary
    /// condition — when it never reaches `n`, the per-frame scan is
    /// skipped entirely. Time is ignored, which only over-approximates.
    pub fn hotspot_candidate(&self, radius: f32, n: usize) -> bool {
        if n <= 1 {
            return !self.tracks.is_empty();
        }
        if self.meta.max_concurrent_tracks < n {
            return false;
        }
        let slack = self.meta.cell_size;
        let mut seen: Vec<bool> = vec![false; self.tracks.len()];
        for (ti, t) in self.tracks.iter().enumerate() {
            for (_, d) in &t.dets {
                let center = d.rect.center();
                let near = self.index.query_circle(&center, radius + slack);
                for s in seen.iter_mut() {
                    *s = false;
                }
                let mut distinct = 0usize;
                for (_, id) in near {
                    let id = id as usize;
                    if !seen[id] {
                        seen[id] = true;
                        distinct += 1;
                        if distinct >= n {
                            return true;
                        }
                    }
                }
                let _ = ti;
            }
        }
        false
    }
}

/// Sample points along a track's center polyline at `step` px so every
/// interpolated position is within `step / 2` of a sample.
fn rasterize_track(t: &Track, step: f32) -> Vec<Point> {
    let step = step.max(0.5);
    let centers: Vec<Point> = t.dets.iter().map(|(_, d)| d.rect.center()).collect();
    let mut out = Vec::new();
    match centers.len() {
        0 => {}
        1 => out.push(centers[0]),
        _ => {
            for w in centers.windows(2) {
                let (a, b) = (w[0], w[1]);
                let n = (a.dist(&b) / step).ceil().max(1.0) as usize;
                for k in 0..n {
                    out.push(a.lerp(&b, k as f32 / n as f32));
                }
            }
            out.push(*centers.last().unwrap());
        }
    }
    out
}

pub(crate) use otif_core::fnv1a;

/// Maximum number of overlapping `(first, last)` intervals.
fn max_concurrent(tracks: &[Track]) -> usize {
    let mut events: Vec<(usize, i32)> = Vec::with_capacity(tracks.len() * 2);
    for t in tracks.iter().filter(|t| !t.is_empty()) {
        events.push((t.first_frame(), 1));
        events.push((t.last_frame() + 1, -1));
    }
    events.sort_unstable();
    let (mut cur, mut peak) = (0i64, 0i64);
    for (_, d) in events {
        cur += d as i64;
        peak = peak.max(cur);
    }
    peak as usize
}

const CATALOG_FILE: &str = "catalog.json";
const CLIPS_DIR: &str = "clips";
const QUARANTINE_DIR: &str = "quarantine";

/// Store tuning: how hard `load()` retries transient read faults and
/// how much *virtual* backoff each attempt schedules (deterministic —
/// recorded in counters, never slept).
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Extra read attempts after a transient I/O failure (corruption
    /// and absence never retry).
    pub read_retries: u32,
    /// Virtual backoff before retry attempt `k` is
    /// `backoff_base_seconds * 2^k`.
    pub backoff_base_seconds: f64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            read_retries: 2,
            backoff_base_seconds: 0.01,
        }
    }
}

/// Deterministic exponential backoff schedule: attempt `k` (0-based)
/// waits `base * 2^k` virtual seconds.
pub fn retry_backoff(base: f64, attempt: u32) -> f64 {
    base * f64::from(2u32.saturating_pow(attempt))
}

fn clip_file_name(id: usize) -> String {
    format!("clip_{id}.json")
}

/// Parse `clip_<id>.json` back into an id.
fn parse_clip_name(name: &str) -> Option<usize> {
    name.strip_prefix("clip_")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

/// The persistent track store. Cheap always-resident catalog; clip
/// payloads (tracks + indexes) deserialized lazily per clip and cached.
/// All filesystem traffic flows through one injectable [`StoreIo`].
pub struct TrackStore {
    dir: PathBuf,
    io: Arc<dyn StoreIo>,
    opts: StoreOptions,
    catalog: Vec<ClipMeta>,
    loaded: Mutex<HashMap<usize, Arc<LoadedClip>>>,
    quarantined: Mutex<BTreeSet<usize>>,
    loads: AtomicU64,
    read_retries: AtomicU64,
    backoff_nanos: AtomicU64,
}

impl TrackStore {
    /// Create an empty store at `dir` on the real filesystem.
    pub fn create(dir: &Path) -> Result<TrackStore, StoreError> {
        Self::create_with(dir, Arc::new(RealIo), StoreOptions::default())
    }

    /// Create an empty store at `dir` through `io` (the directory is
    /// created; an existing store there is an error — stores are
    /// append-only).
    pub fn create_with(
        dir: &Path,
        io: Arc<dyn StoreIo>,
        opts: StoreOptions,
    ) -> Result<TrackStore, StoreError> {
        for existing in [dir.join(JOURNAL_FILE), dir.join(CATALOG_FILE)] {
            if io.exists(&existing) {
                return Err(StoreError::Invalid {
                    detail: format!("{} already exists; open() it instead", existing.display()),
                });
            }
        }
        io.create_dir_all(&dir.join(CLIPS_DIR))?;
        // an empty append creates the journal file durably
        io.append(&dir.join(JOURNAL_FILE), b"")?;
        let store = TrackStore {
            dir: dir.to_path_buf(),
            io,
            opts,
            catalog: Vec::new(),
            loaded: Mutex::new(HashMap::new()),
            quarantined: Mutex::new(BTreeSet::new()),
            loads: AtomicU64::new(0),
            read_retries: AtomicU64::new(0),
            backoff_nanos: AtomicU64::new(0),
        };
        store.write_checkpoint()?;
        Ok(store)
    }

    /// Open an existing store on the real filesystem.
    pub fn open(dir: &Path) -> Result<TrackStore, StoreError> {
        Self::open_with(dir, Arc::new(RealIo), StoreOptions::default())
    }

    /// Open an existing store through `io`. The journal is
    /// authoritative when present (a torn tail — crash debris — is
    /// tolerated and ignored; mid-journal corruption is an error that
    /// `store-fsck` must resolve). A store with only a legacy
    /// `catalog.json` opens from the checkpoint.
    pub fn open_with(
        dir: &Path,
        io: Arc<dyn StoreIo>,
        opts: StoreOptions,
    ) -> Result<TrackStore, StoreError> {
        let journal_path = dir.join(JOURNAL_FILE);
        let catalog = if io.exists(&journal_path) {
            let replayed = journal::replay(&io.read(&journal_path)?);
            if replayed.invalid_records > 0 {
                return Err(StoreError::Invalid {
                    detail: format!(
                        "{}: {} invalid mid-journal record(s); run store-fsck --repair",
                        journal_path.display(),
                        replayed.invalid_records
                    ),
                });
            }
            replayed.entries
        } else {
            // legacy (pre-journal) store: checkpoint only
            let path = dir.join(CATALOG_FILE);
            if !io.exists(&path) {
                return Err(StoreError::Missing {
                    what: format!("store at {} (no journal, no catalog)", dir.display()),
                });
            }
            let bytes = io.read(&path)?;
            let text = std::str::from_utf8(&bytes).map_err(|e| StoreError::Invalid {
                detail: format!("{}: {e}", path.display()),
            })?;
            serde_json::from_str(text).map_err(|e| StoreError::Invalid {
                detail: format!("{}: {e}", path.display()),
            })?
        };
        let mut quarantined = BTreeSet::new();
        let qdir = dir.join(QUARANTINE_DIR);
        if io.exists(&qdir) {
            for name in io.list(&qdir)? {
                if let Some(id) = parse_clip_name(&name) {
                    quarantined.insert(id);
                }
            }
        }
        Ok(TrackStore {
            dir: dir.to_path_buf(),
            io,
            opts,
            catalog,
            loaded: Mutex::new(HashMap::new()),
            quarantined: Mutex::new(quarantined),
            loads: AtomicU64::new(0),
            read_retries: AtomicU64::new(0),
            backoff_nanos: AtomicU64::new(0),
        })
    }

    /// Rewrite the `catalog.json` checkpoint atomically (tmp + rename).
    fn write_checkpoint(&self) -> Result<(), StoreError> {
        let path = self.dir.join(CATALOG_FILE);
        let tmp = self.dir.join(format!("{CATALOG_FILE}.tmp"));
        let json = serde_json::to_string(&self.catalog).map_err(|e| StoreError::Invalid {
            detail: format!("catalog encode: {e}"),
        })?;
        self.io.write(&tmp, json.as_bytes())?;
        self.io.rename(&tmp, &path)
    }

    fn clip_path(&self, id: usize) -> PathBuf {
        self.dir.join(CLIPS_DIR).join(clip_file_name(id))
    }

    fn quarantine_path(&self, id: usize) -> PathBuf {
        self.dir.join(QUARANTINE_DIR).join(clip_file_name(id))
    }

    /// Cell side used for a clip's spatial summary: coarse enough that
    /// the catalog stays small, fine enough that corner-region pruning
    /// discriminates (≈ 48×48 cells over the larger frame dimension).
    fn cell_size_for(info: &ClipInfo) -> f32 {
        (info.width.max(info.height) / 48.0).max(4.0)
    }

    /// Ingest one clip's extracted tracks (`Engine` / `Pipeline` output
    /// order is preserved). Returns the assigned clip id.
    ///
    /// Crash consistency: payload tmp-write → fsync → atomic rename,
    /// *then* the journal append — which is the acknowledgement point.
    /// `Ok` means the ingest survives any subsequent crash; `Err` means
    /// it left at most recoverable debris (an orphan tmp or clip file
    /// with no journal record, removed by [`fsck`]). The checkpoint
    /// rewrite afterwards is best-effort: its failure is swallowed
    /// because the journal already carries the entry.
    pub fn ingest_clip(&mut self, info: &ClipInfo, tracks: &[Track]) -> Result<usize, StoreError> {
        self.ingest_inner(info, tracks, None)
    }

    /// [`Self::ingest_clip`] keyed by an ingest `source` (e.g.
    /// `<dataset>/<clip index>`), making re-ingest idempotent: if a clip
    /// with the same source and the same content fingerprint already
    /// exists, its id is returned without appending anything (`false` in
    /// the second slot); the same source with *different* content is an
    /// error (the store is append-only — a source cannot be silently
    /// rewritten). Together with the engine's run journal this makes the
    /// engine→store handoff exactly-once across crash/resume.
    pub fn ingest_clip_keyed(
        &mut self,
        info: &ClipInfo,
        tracks: &[Track],
        source: &str,
    ) -> Result<(usize, bool), StoreError> {
        let json = serde_json::to_string(tracks).map_err(|e| StoreError::Invalid {
            detail: format!("track encode: {e}"),
        })?;
        let fingerprint = fnv1a(json.as_bytes());
        if let Some(existing) = self
            .catalog
            .iter()
            .find(|m| m.source.as_deref() == Some(source))
        {
            if existing.fingerprint == fingerprint {
                return Ok((existing.id, false));
            }
            return Err(StoreError::Invalid {
                detail: format!(
                    "source {source:?} is already ingested as clip {} with a \
                     different content fingerprint ({:016x} stored, {fingerprint:016x} \
                     offered); the store is append-only",
                    existing.id, existing.fingerprint
                ),
            });
        }
        let id = self.ingest_inner(info, tracks, Some(source.to_string()))?;
        Ok((id, true))
    }

    fn ingest_inner(
        &mut self,
        info: &ClipInfo,
        tracks: &[Track],
        source: Option<String>,
    ) -> Result<usize, StoreError> {
        let id = self.catalog.len();
        let json = serde_json::to_string(tracks).map_err(|e| StoreError::Invalid {
            detail: format!("track encode: {e}"),
        })?;
        let fingerprint = fnv1a(json.as_bytes());

        let cell_size = Self::cell_size_for(info);
        let cols = (info.width / cell_size).ceil().max(1.0) as u32;
        let rows = (info.height / cell_size).ceil().max(1.0) as u32;
        let mut cells: Vec<(u32, u32)> = Vec::new();
        for t in tracks {
            for p in rasterize_track(t, cell_size * 0.5) {
                let cx = ((p.x / cell_size).floor() as i64).clamp(0, cols as i64 - 1) as u32;
                let cy = ((p.y / cell_size).floor() as i64).clamp(0, rows as i64 - 1) as u32;
                cells.push((cx, cy));
            }
        }
        cells.sort_unstable();
        cells.dedup();

        let meta = ClipMeta {
            id,
            num_frames: info.num_frames,
            fps: info.fps,
            width: info.width,
            height: info.height,
            num_tracks: tracks.len(),
            max_concurrent_tracks: max_concurrent(tracks),
            fingerprint,
            cell_size,
            occupied_cells: cells,
            source,
        };

        let path = self.clip_path(id);
        let tmp = self
            .dir
            .join(CLIPS_DIR)
            .join(format!("{}.tmp", clip_file_name(id)));
        self.io.write(&tmp, json.as_bytes())?;
        self.io.rename(&tmp, &path)?;
        self.io.append(
            &self.dir.join(JOURNAL_FILE),
            &journal::encode_record(&meta)?,
        )?;
        // === acknowledged: the record is durable ===
        self.catalog.push(meta);
        let _ = self.write_checkpoint(); // best-effort; journal is authoritative
        Ok(id)
    }

    /// Catalog entries, in clip-id order.
    pub fn metas(&self) -> &[ClipMeta] {
        &self.catalog
    }

    /// Number of ingested clips.
    pub fn len(&self) -> usize {
        self.catalog.len()
    }

    /// Whether the store holds no clips.
    pub fn is_empty(&self) -> bool {
        self.catalog.is_empty()
    }

    /// Clip-set fingerprint: FNV-1a over every clip's id and content
    /// fingerprint, in id order. Any ingest changes it, invalidating all
    /// cached answers keyed against the previous clip set.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.catalog.len() * 16);
        for m in &self.catalog {
            bytes.extend_from_slice(&(m.id as u64).to_le_bytes());
            bytes.extend_from_slice(&m.fingerprint.to_le_bytes());
        }
        fnv1a(&bytes)
    }

    /// Read `path` with the bounded deterministic retry schedule:
    /// transient I/O failures retry up to `opts.read_retries` times,
    /// accruing `retry_backoff(base, attempt)` *virtual* seconds per
    /// retry (counted, never slept — wall clock stays deterministic).
    fn read_with_retry(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        let mut attempt = 0u32;
        loop {
            match self.io.read(path) {
                Ok(bytes) => return Ok(bytes),
                Err(e) if e.is_transient() && attempt < self.opts.read_retries => {
                    let backoff = retry_backoff(self.opts.backoff_base_seconds, attempt);
                    self.read_retries.fetch_add(1, Ordering::Relaxed);
                    self.backoff_nanos
                        .fetch_add((backoff * 1e9) as u64, Ordering::Relaxed);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Move a clip file that failed verification into `quarantine/` and
    /// mark the id. Best-effort on the filesystem (the in-memory mark
    /// alone stops the store from serving the payload); the persistent
    /// marker survives reopen.
    fn quarantine(&self, id: usize) {
        self.quarantined.lock().unwrap().insert(id);
        if self
            .io
            .create_dir_all(&self.dir.join(QUARANTINE_DIR))
            .is_ok()
        {
            let _ = self
                .io
                .rename(&self.clip_path(id), &self.quarantine_path(id));
        }
    }

    /// Quarantined clip ids, in order.
    pub fn quarantined(&self) -> Vec<usize> {
        self.quarantined.lock().unwrap().iter().copied().collect()
    }

    /// Whether `id` is quarantined.
    pub fn is_quarantined(&self, id: usize) -> bool {
        self.quarantined.lock().unwrap().contains(&id)
    }

    /// Load a clip (lazily; cached). Concurrent callers may race on the
    /// first load of the same clip — exactly one result wins the cache
    /// and `clip_loads` counts file reads that won.
    ///
    /// Every cache-missing load re-reads the payload (with bounded
    /// transient-fault retry) and verifies its FNV-1a fingerprint
    /// against the catalog entry; a mismatch quarantines the file and
    /// returns [`StoreError::Corrupt`].
    pub fn load(&self, id: usize) -> Result<Arc<LoadedClip>, StoreError> {
        if let Some(c) = self.loaded.lock().unwrap().get(&id) {
            return Ok(Arc::clone(c));
        }
        if self.is_quarantined(id) {
            return Err(StoreError::Quarantined { clip: id });
        }
        let meta = self
            .catalog
            .get(id)
            .ok_or(StoreError::Missing {
                what: format!("clip {id} in the catalog"),
            })?
            .clone();
        let path = self.clip_path(id);
        let bytes = self.read_with_retry(&path)?;
        let actual = fnv1a(&bytes);
        if actual != meta.fingerprint {
            self.quarantine(id);
            return Err(StoreError::Corrupt {
                clip: id,
                expected: meta.fingerprint,
                actual,
            });
        }
        let text = std::str::from_utf8(&bytes).map_err(|e| StoreError::Invalid {
            detail: format!("{}: {e}", path.display()),
        })?;
        let tracks: Vec<Track> = serde_json::from_str(text).map_err(|e| StoreError::Invalid {
            detail: format!("{}: {e}", path.display()),
        })?;
        let built = Arc::new(LoadedClip::build(meta, tracks));
        let mut cache = self.loaded.lock().unwrap();
        let entry = cache.entry(id).or_insert_with(|| {
            self.loads.fetch_add(1, Ordering::Relaxed);
            Arc::clone(&built)
        });
        Ok(Arc::clone(entry))
    }

    /// Number of clip files actually deserialized so far (cache-winning
    /// loads). The pruning benches assert on this.
    pub fn clip_loads(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Transient read failures retried so far.
    pub fn read_retry_count(&self) -> u64 {
        self.read_retries.load(Ordering::Relaxed)
    }

    /// Virtual seconds of retry backoff scheduled so far.
    pub fn retry_backoff_seconds(&self) -> f64 {
        self.backoff_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Drop every cached clip payload (cold-cache benchmarking).
    pub fn evict_clips(&self) {
        self.loaded.lock().unwrap().clear();
    }
}

/// What `store-fsck` found (and, with `repair`, did) in one store
/// directory.
#[derive(Debug, Default, Serialize)]
pub struct FsckReport {
    /// Valid records replayed from the journal (or checkpoint entries
    /// for a legacy store).
    pub journal_entries: usize,
    /// Entries in the `catalog.json` checkpoint (0 when absent).
    pub checkpoint_entries: usize,
    /// Whether the journal ended in crash debris.
    pub torn_tail: bool,
    /// Whether repair truncated that debris away.
    pub torn_tail_truncated: bool,
    /// Complete mid-journal records that failed checksum/parse —
    /// corruption beyond crash debris (unrepairable without loss).
    pub invalid_records: usize,
    /// Acknowledged clips whose payload file is absent and not
    /// quarantined — the data-loss signal; must be empty after any
    /// crash-only history.
    pub missing_clips: Vec<usize>,
    /// Clips whose payload failed fingerprint verification during this
    /// fsck (moved to `quarantine/` when repairing).
    pub corrupt_quarantined: Vec<usize>,
    /// Clips already sitting in `quarantine/` before this fsck.
    pub already_quarantined: Vec<usize>,
    /// Debris files in the store (orphan tmp files, clip files with no
    /// journal record).
    pub orphan_files: Vec<String>,
    /// How many of those repair removed.
    pub orphan_files_removed: usize,
    /// Whether repair rewrote the `catalog.json` checkpoint from the
    /// journal.
    pub checkpoint_rewritten: bool,
    /// Whether this fsck ran in repair mode.
    pub repaired: bool,
}

impl FsckReport {
    /// No acknowledged data is lost: every journal entry's payload is
    /// present and verified (or explicitly quarantined) and no
    /// mid-journal record is corrupt.
    pub fn consistent(&self) -> bool {
        self.missing_clips.is_empty() && self.invalid_records == 0
    }

    /// Nothing wrong at all — no debris, no corruption, checkpoint in
    /// sync with the journal.
    pub fn healthy(&self) -> bool {
        self.consistent()
            && !self.torn_tail
            && self.corrupt_quarantined.is_empty()
            && self.orphan_files.is_empty()
            && self.checkpoint_entries == self.journal_entries
    }
}

/// Check (and with `repair`, fix) a store directory on the real
/// filesystem. See [`fsck_with`].
pub fn fsck(dir: &Path, repair: bool) -> Result<FsckReport, StoreError> {
    fsck_with(dir, &RealIo, repair)
}

/// Replay the ingest journal and reconcile the store directory with it:
/// truncate a torn journal tail, verify every acknowledged payload's
/// fingerprint (quarantining corruption), detect missing payloads (data
/// loss — never expected from crashes), remove orphan debris, and
/// rewrite the `catalog.json` checkpoint. Without `repair` nothing is
/// modified; the report says what *would* be done.
pub fn fsck_with(dir: &Path, io: &dyn StoreIo, repair: bool) -> Result<FsckReport, StoreError> {
    let mut report = FsckReport {
        repaired: repair,
        ..FsckReport::default()
    };
    let journal_path = dir.join(JOURNAL_FILE);
    let catalog_path = dir.join(CATALOG_FILE);

    // checkpoint entry count (diagnostic only — journal is authoritative)
    let checkpoint: Vec<ClipMeta> = if io.exists(&catalog_path) {
        let bytes = io.read(&catalog_path)?;
        std::str::from_utf8(&bytes)
            .ok()
            .and_then(|t| serde_json::from_str(t).ok())
            .unwrap_or_default()
    } else {
        Vec::new()
    };
    report.checkpoint_entries = checkpoint.len();

    let entries: Vec<ClipMeta> = if io.exists(&journal_path) {
        let bytes = io.read(&journal_path)?;
        let replayed = journal::replay(&bytes);
        report.torn_tail = replayed.torn_tail;
        report.invalid_records = replayed.invalid_records;
        if repair && (replayed.torn_tail || replayed.invalid_records > 0) {
            // keep only the valid prefix (atomic rewrite)
            let tmp = dir.join(format!("{JOURNAL_FILE}.tmp"));
            io.write(&tmp, &bytes[..replayed.valid_bytes])?;
            io.rename(&tmp, &journal_path)?;
            report.torn_tail_truncated = replayed.torn_tail;
        }
        replayed.entries
    } else if io.exists(&catalog_path) {
        // legacy store: adopt the checkpoint as history; repair writes
        // the journal those ingests would have produced
        if repair {
            let mut bytes = Vec::new();
            for m in &checkpoint {
                bytes.extend(journal::encode_record(m)?);
            }
            io.append(&journal_path, &bytes)?;
        }
        checkpoint.clone()
    } else {
        // unborn store: nothing to check
        return Ok(report);
    };
    report.journal_entries = entries.len();

    // reconcile payloads with the journal
    let clips_dir = dir.join(CLIPS_DIR);
    let qdir = dir.join(QUARANTINE_DIR);
    for meta in &entries {
        let path = clips_dir.join(clip_file_name(meta.id));
        if io.exists(&path) {
            let actual = fnv1a(&io.read(&path)?);
            if actual != meta.fingerprint {
                report.corrupt_quarantined.push(meta.id);
                if repair {
                    io.create_dir_all(&qdir)?;
                    io.rename(&path, &qdir.join(clip_file_name(meta.id)))?;
                }
            }
        } else if io.exists(&qdir.join(clip_file_name(meta.id))) {
            report.already_quarantined.push(meta.id);
        } else {
            report.missing_clips.push(meta.id);
        }
    }

    // debris: tmp files anywhere, clip files without a journal record
    let mut orphans: Vec<PathBuf> = Vec::new();
    if io.exists(&clips_dir) {
        for name in io.list(&clips_dir)? {
            let acked = parse_clip_name(&name).is_some_and(|id| id < entries.len());
            if !acked {
                orphans.push(clips_dir.join(&name));
            }
        }
    }
    let catalog_tmp = dir.join(format!("{CATALOG_FILE}.tmp"));
    if io.exists(&catalog_tmp) {
        orphans.push(catalog_tmp);
    }
    for path in orphans {
        report.orphan_files.push(
            path.file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned(),
        );
        if repair {
            io.remove_file(&path)?;
            report.orphan_files_removed += 1;
        }
    }

    // bring the checkpoint back in sync with the journal
    if repair && (report.checkpoint_entries != entries.len() || !io.exists(&catalog_path)) {
        let json = serde_json::to_string(&entries).map_err(|e| StoreError::Invalid {
            detail: format!("catalog encode: {e}"),
        })?;
        let tmp = dir.join(format!("{CATALOG_FILE}.tmp"));
        io.write(&tmp, json.as_bytes())?;
        io.rename(&tmp, &catalog_path)?;
        report.checkpoint_rewritten = true;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultyIo, StoreFaultPlan, StoreOp};
    use otif_cv::Detection;
    use otif_sim::ObjectClass;

    fn det(x: f32, y: f32) -> Detection {
        Detection {
            rect: Rect::new(x - 5.0, y - 3.0, 10.0, 6.0),
            class: ObjectClass::Car,
            confidence: 0.9,
            appearance: vec![],
            debug_gt: None,
        }
    }

    fn track(id: u32, pts: &[(usize, f32, f32)]) -> Track {
        let mut t = Track::new(id, ObjectClass::Car);
        for &(f, x, y) in pts {
            t.push(f, det(x, y));
        }
        t
    }

    fn info() -> ClipInfo {
        ClipInfo {
            num_frames: 100,
            fps: 10.0,
            width: 640.0,
            height: 352.0,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("otif-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ingest_load_roundtrip_preserves_tracks() {
        let dir = tmp_dir("rt");
        let mut store = TrackStore::create(&dir).unwrap();
        let tracks = vec![
            track(0, &[(0, 10.0, 10.0), (50, 600.0, 300.0)]),
            track(1, &[(20, 320.0, 176.0), (80, 10.0, 340.0)]),
        ];
        let id = store.ingest_clip(&info(), &tracks).unwrap();
        // round-trip through a fresh open (no warm in-memory state)
        let store = TrackStore::open(&dir).unwrap();
        let loaded = store.load(id).unwrap();
        assert_eq!(
            serde_json::to_string(&loaded.tracks).unwrap(),
            serde_json::to_string(&tracks).unwrap(),
            "ingest → load must be lossless"
        );
        assert_eq!(store.clip_loads(), 1);
        store.load(id).unwrap();
        assert_eq!(store.clip_loads(), 1, "second load is cached");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keyed_ingest_is_idempotent_and_rejects_rewrites() {
        let dir = tmp_dir("keyed");
        let mut store = TrackStore::create(&dir).unwrap();
        let tracks = vec![track(0, &[(0, 10.0, 10.0), (50, 600.0, 300.0)])];
        let (id, fresh) = store.ingest_clip_keyed(&info(), &tracks, "ds/0").unwrap();
        assert!(fresh);
        let fp = store.fingerprint();
        // re-acknowledging the same source + content is a no-op
        let (again, fresh) = store.ingest_clip_keyed(&info(), &tracks, "ds/0").unwrap();
        assert_eq!(again, id);
        assert!(!fresh, "duplicate ack must not re-ingest");
        assert_eq!(store.len(), 1);
        assert_eq!(store.fingerprint(), fp, "store unchanged by duplicate ack");
        // same source, different content: append-only stores refuse
        let other = vec![track(0, &[(0, 1.0, 1.0), (5, 9.0, 9.0)])];
        let err = store
            .ingest_clip_keyed(&info(), &other, "ds/0")
            .err()
            .unwrap();
        assert!(matches!(err, StoreError::Invalid { .. }), "{err}");
        // a different source ingests normally
        let (id2, fresh) = store.ingest_clip_keyed(&info(), &other, "ds/1").unwrap();
        assert!(fresh);
        assert_ne!(id2, id);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keyed_ingest_dedupe_survives_reopen() {
        let dir = tmp_dir("keyed-reopen");
        let tracks = vec![track(0, &[(0, 10.0, 10.0), (50, 600.0, 300.0)])];
        let id = {
            let mut store = TrackStore::create(&dir).unwrap();
            store.ingest_clip_keyed(&info(), &tracks, "ds/0").unwrap().0
        };
        // the source key rides in the journal, so a fresh open still dedupes
        let mut store = TrackStore::open(&dir).unwrap();
        assert_eq!(store.metas()[id].source.as_deref(), Some("ds/0"));
        let (again, fresh) = store.ingest_clip_keyed(&info(), &tracks, "ds/0").unwrap();
        assert_eq!(again, id);
        assert!(!fresh);
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_replays_journal_not_checkpoint() {
        let dir = tmp_dir("journal-first");
        let mut store = TrackStore::create(&dir).unwrap();
        store
            .ingest_clip(&info(), &[track(0, &[(0, 1.0, 1.0), (5, 9.0, 9.0)])])
            .unwrap();
        // sabotage the checkpoint: journal must still win
        std::fs::write(dir.join(CATALOG_FILE), b"[]").unwrap();
        let store = TrackStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1, "journal is authoritative over checkpoint");
        store.load(0).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_verifies_fingerprint_and_quarantines() {
        let dir = tmp_dir("verify");
        let mut store = TrackStore::create(&dir).unwrap();
        let id = store
            .ingest_clip(&info(), &[track(0, &[(0, 1.0, 1.0), (5, 9.0, 9.0)])])
            .unwrap();
        let path = dir.join(CLIPS_DIR).join(clip_file_name(id));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let store = TrackStore::open(&dir).unwrap();
        let err = store.load(id).err().unwrap();
        assert!(matches!(err, StoreError::Corrupt { clip: 0, .. }), "{err}");
        assert!(store.is_quarantined(id));
        assert!(dir.join(QUARANTINE_DIR).join(clip_file_name(id)).exists());
        // second load short-circuits on the quarantine mark
        let err = store.load(id).err().unwrap();
        assert!(matches!(err, StoreError::Quarantined { clip: 0 }), "{err}");
        // quarantine survives reopen via the persistent marker
        let store = TrackStore::open(&dir).unwrap();
        assert!(store.is_quarantined(id));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_read_faults_retry_with_virtual_backoff() {
        let dir = tmp_dir("retry");
        let mut store = TrackStore::create(&dir).unwrap();
        let id = store
            .ingest_clip(&info(), &[track(0, &[(0, 1.0, 1.0), (5, 9.0, 9.0)])])
            .unwrap();
        let io = Arc::new(FaultyIo::new(RealIo, StoreFaultPlan::transient_reads(1, 2)));
        // read ordinal 0 is the journal replay on open; 1 and 2 fail
        let store = TrackStore::open_with(&dir, io, StoreOptions::default()).unwrap();
        store.load(id).unwrap();
        assert_eq!(store.read_retry_count(), 2);
        let expected = retry_backoff(0.01, 0) + retry_backoff(0.01, 1);
        assert!((store.retry_backoff_seconds() - expected).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_mid_ingest_loses_nothing_acknowledged() {
        let dir = tmp_dir("crash");
        // crash on the journal append of the second ingest: clip 1's file
        // landed but was never acknowledged
        let io = Arc::new(FaultyIo::new(
            RealIo,
            StoreFaultPlan::crash_at(StoreOp::Append, 2),
        ));
        let mut store = TrackStore::create_with(&dir, io, StoreOptions::default()).unwrap();
        let t0 = vec![track(0, &[(0, 1.0, 1.0), (5, 9.0, 9.0)])];
        let t1 = vec![track(0, &[(0, 2.0, 2.0), (5, 8.0, 8.0)])];
        store.ingest_clip(&info(), &t0).unwrap();
        assert!(store.ingest_clip(&info(), &t1).is_err(), "crash fires");
        drop(store);

        let report = fsck(&dir, true).unwrap();
        assert!(report.consistent(), "{report:?}");
        assert_eq!(report.journal_entries, 1);
        assert_eq!(report.orphan_files_removed, 1, "unacked clip 1 removed");

        let store = TrackStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1, "exactly the acknowledged ingest survives");
        let loaded = store.load(0).unwrap();
        assert_eq!(
            serde_json::to_string(&loaded.tracks).unwrap(),
            serde_json::to_string(&t0).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_truncates_torn_journal_tail() {
        let dir = tmp_dir("torn-tail");
        // torn append on the second ingest's journal record
        let io = Arc::new(FaultyIo::new(
            RealIo,
            StoreFaultPlan::torn_at(StoreOp::Append, 2),
        ));
        let mut store = TrackStore::create_with(&dir, io, StoreOptions::default()).unwrap();
        store
            .ingest_clip(&info(), &[track(0, &[(0, 1.0, 1.0), (5, 9.0, 9.0)])])
            .unwrap();
        assert!(store
            .ingest_clip(&info(), &[track(0, &[(0, 2.0, 2.0), (5, 8.0, 8.0)])])
            .is_err());
        drop(store);

        let unrepaired = fsck(&dir, false).unwrap();
        assert!(unrepaired.torn_tail);
        assert!(!unrepaired.healthy());
        assert!(unrepaired.consistent(), "torn tail is not data loss");

        let repaired = fsck(&dir, true).unwrap();
        assert!(repaired.torn_tail_truncated);
        let clean = fsck(&dir, false).unwrap();
        assert!(clean.healthy(), "{clean:?}");
        assert_eq!(TrackStore::open(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_adopts_legacy_catalog_only_store() {
        let dir = tmp_dir("legacy");
        let mut store = TrackStore::create(&dir).unwrap();
        store
            .ingest_clip(&info(), &[track(0, &[(0, 1.0, 1.0), (5, 9.0, 9.0)])])
            .unwrap();
        // simulate a pre-journal store
        std::fs::remove_file(dir.join(JOURNAL_FILE)).unwrap();
        let store = TrackStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1, "legacy open falls back to checkpoint");
        let report = fsck(&dir, true).unwrap();
        assert!(report.consistent());
        assert_eq!(report.journal_entries, 1, "journal rebuilt from checkpoint");
        assert!(dir.join(JOURNAL_FILE).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn occupancy_covers_interpolated_geometry() {
        let dir = tmp_dir("occ");
        let mut store = TrackStore::create(&dir).unwrap();
        // A diagonal track with only two detections: the midpoint is
        // interpolated, far from either endpoint.
        let tracks = vec![track(0, &[(0, 10.0, 10.0), (99, 630.0, 340.0)])];
        let id = store.ingest_clip(&info(), &tracks).unwrap();
        let meta = &store.metas()[id];
        let mid = Rect::new(315.0, 170.0, 10.0, 10.0);
        assert!(
            meta.geometry_intersects(&mid),
            "rasterized cells must cover the interpolated midpoint"
        );
        let off = Rect::new(600.0, 10.0, 30.0, 30.0);
        assert!(
            !meta.geometry_intersects(&off),
            "opposite corner stays unoccupied"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_concurrent_and_fingerprint() {
        let tracks = vec![
            track(0, &[(0, 1.0, 1.0), (10, 2.0, 2.0)]),
            track(1, &[(5, 1.0, 1.0), (15, 2.0, 2.0)]),
            track(2, &[(11, 1.0, 1.0), (20, 2.0, 2.0)]),
        ];
        assert_eq!(max_concurrent(&tracks), 2);
        let a = fnv1a(b"hello");
        let b = fnv1a(b"hellp");
        assert_ne!(a, b);
        assert_eq!(a, fnv1a(b"hello"));
    }

    #[test]
    fn ingest_changes_store_fingerprint() {
        let dir = tmp_dir("fp");
        let mut store = TrackStore::create(&dir).unwrap();
        store
            .ingest_clip(&info(), &[track(0, &[(0, 1.0, 1.0), (5, 9.0, 9.0)])])
            .unwrap();
        let f1 = store.fingerprint();
        store
            .ingest_clip(&info(), &[track(0, &[(0, 2.0, 2.0), (5, 8.0, 8.0)])])
            .unwrap();
        assert_ne!(f1, store.fingerprint());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hotspot_candidate_detects_clusters_and_rejects_spread() {
        // two tracks that pass close together
        let close = LoadedClip::build(
            ClipMeta {
                id: 0,
                num_frames: 100,
                fps: 10.0,
                width: 640.0,
                height: 352.0,
                num_tracks: 2,
                max_concurrent_tracks: 2,
                fingerprint: 0,
                cell_size: 13.0,
                occupied_cells: vec![],
                source: None,
            },
            vec![
                track(0, &[(0, 100.0, 100.0), (50, 110.0, 100.0)]),
                track(1, &[(0, 105.0, 105.0), (50, 115.0, 105.0)]),
            ],
        );
        assert!(close.hotspot_candidate(30.0, 2));
        // two tracks in opposite corners
        let far = LoadedClip::build(
            ClipMeta {
                id: 1,
                num_frames: 100,
                fps: 10.0,
                width: 640.0,
                height: 352.0,
                num_tracks: 2,
                max_concurrent_tracks: 2,
                fingerprint: 0,
                cell_size: 13.0,
                occupied_cells: vec![],
                source: None,
            },
            vec![
                track(0, &[(0, 10.0, 10.0), (50, 40.0, 10.0)]),
                track(1, &[(0, 600.0, 340.0), (50, 630.0, 340.0)]),
            ],
        );
        assert!(!far.hotspot_candidate(30.0, 2));
        assert!(far.hotspot_candidate(30.0, 1), "n=1 only needs any track");
    }
}
