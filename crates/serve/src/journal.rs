//! The store's append-only ingest journal — the durability commit
//! point.
//!
//! Every ingest appends exactly one record to `journal.log` *after* the
//! clip payload file is durably in place (tmp write + fsync + atomic
//! rename). A record is one line:
//!
//! ```text
//! <16 hex chars: FNV-1a of body> <body: ClipMeta as JSON>\n
//! ```
//!
//! The checksum makes torn appends self-detecting: a crash mid-append
//! leaves a trailing line whose checksum cannot match (or no newline at
//! all), and [`replay`] classifies it as a *torn tail* — expected
//! crash debris, truncated by `store-fsck --repair`, never data loss.
//! Because the clip file is renamed into place before its record is
//! appended, every valid journal record refers to a clip file that
//! exists on disk: an acknowledged ingest (journal append returned Ok)
//! can always be recovered by replaying the journal, which is the
//! zero-acknowledged-loss invariant the robustness bench sweeps.
//!
//! `catalog.json` is demoted to a rewritable *checkpoint* of the same
//! entries — convenient for tools, never authoritative: `open()`
//! replays the journal when one exists.

use crate::io::StoreError;
use crate::store::{fnv1a, ClipMeta};

/// File name of the ingest journal inside a store directory.
pub const JOURNAL_FILE: &str = "journal.log";

/// Encode one journal record (checksum + body + newline).
pub fn encode_record(meta: &ClipMeta) -> Result<Vec<u8>, StoreError> {
    let body = serde_json::to_string(meta).map_err(|e| StoreError::Invalid {
        detail: format!("journal encode: {e}"),
    })?;
    Ok(format!("{:016x} {}\n", fnv1a(body.as_bytes()), body).into_bytes())
}

/// Outcome of replaying journal bytes: the valid record prefix plus a
/// classification of whatever follows it.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Catalog entries recovered from valid records, in journal order.
    pub entries: Vec<ClipMeta>,
    /// Whether the journal ends in crash debris (a final line that is
    /// unterminated or fails its checksum).
    pub torn_tail: bool,
    /// Complete, newline-terminated records that failed their checksum
    /// or did not parse — corruption beyond a simple torn tail.
    pub invalid_records: usize,
    /// Byte length of the valid record prefix; truncating the journal
    /// to this length drops only debris.
    pub valid_bytes: usize,
}

impl JournalReplay {
    /// Whether the journal is pristine: every byte belongs to a valid
    /// record.
    pub fn clean(&self) -> bool {
        !self.torn_tail && self.invalid_records == 0
    }
}

/// Decode one record line (without its newline) into a [`ClipMeta`].
fn decode_line(line: &str) -> Option<ClipMeta> {
    let (sum, body) = line.split_at_checked(16)?;
    let body = body.strip_prefix(' ')?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    if sum != fnv1a(body.as_bytes()) {
        return None;
    }
    serde_json::from_str(body).ok()
}

/// Replay raw journal bytes. Reading stops being "valid prefix" at the
/// first bad record; a bad *final* line with no records after it is a
/// torn tail (crash debris), anything else bad counts as an invalid
/// record. Ids must be dense (`0..n` in order) — a gap means records
/// from a foreign store were spliced in, and replay reports the prefix
/// up to the gap as valid with the rest invalid.
pub fn replay(bytes: &[u8]) -> JournalReplay {
    let mut out = JournalReplay::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            // unterminated final line: torn append
            out.torn_tail = true;
            break;
        };
        let line = &rest[..nl];
        let decoded = std::str::from_utf8(line).ok().and_then(decode_line);
        match decoded {
            Some(meta) if meta.id == out.entries.len() => {
                out.entries.push(meta);
                pos += nl + 1;
                out.valid_bytes = pos;
            }
            _ => {
                if pos + nl + 1 >= bytes.len() {
                    // bad but final line: a torn append that happened
                    // to land a newline inside the half-written bytes
                    out.torn_tail = true;
                } else {
                    out.invalid_records += 1;
                    // everything after a mid-journal bad record is
                    // untrusted
                    out.invalid_records += bytes[pos + nl + 1..]
                        .iter()
                        .filter(|&&b| b == b'\n')
                        .count();
                }
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: usize) -> ClipMeta {
        ClipMeta {
            id,
            num_frames: 100,
            fps: 10.0,
            width: 640.0,
            height: 352.0,
            num_tracks: 3,
            max_concurrent_tracks: 2,
            fingerprint: 0xdead_beef ^ id as u64,
            cell_size: 13.0,
            occupied_cells: vec![(1, 2), (3, 4)],
            source: None,
        }
    }

    fn journal(n: usize) -> Vec<u8> {
        (0..n)
            .flat_map(|i| encode_record(&meta(i)).unwrap())
            .collect()
    }

    #[test]
    fn round_trip_replays_all_records() {
        let bytes = journal(3);
        let r = replay(&bytes);
        assert!(r.clean());
        assert_eq!(r.entries.len(), 3);
        assert_eq!(r.valid_bytes, bytes.len());
        for (i, e) in r.entries.iter().enumerate() {
            assert_eq!(e.id, i);
            assert_eq!(e.fingerprint, meta(i).fingerprint);
        }
    }

    #[test]
    fn empty_journal_is_clean_and_empty() {
        let r = replay(b"");
        assert!(r.clean());
        assert!(r.entries.is_empty());
        assert_eq!(r.valid_bytes, 0);
    }

    #[test]
    fn torn_tail_is_detected_and_truncatable() {
        let mut bytes = journal(2);
        let good = bytes.len();
        let extra = encode_record(&meta(2)).unwrap();
        bytes.extend_from_slice(&extra[..extra.len() / 2]); // torn append
        let r = replay(&bytes);
        assert!(r.torn_tail);
        assert_eq!(r.invalid_records, 0);
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.valid_bytes, good, "truncation point = valid prefix");
        // truncating to valid_bytes yields a clean journal
        let r2 = replay(&bytes[..r.valid_bytes]);
        assert!(r2.clean());
        assert_eq!(r2.entries.len(), 2);
    }

    #[test]
    fn corrupt_mid_journal_record_invalidates_suffix() {
        let mut bytes = journal(3);
        // flip a byte inside record 1's body
        let rec0 = encode_record(&meta(0)).unwrap().len();
        bytes[rec0 + 20] ^= 0xff;
        let r = replay(&bytes);
        assert!(!r.clean());
        assert_eq!(r.entries.len(), 1, "only the prefix before the damage");
        assert_eq!(r.invalid_records, 2, "bad record + untrusted suffix");
        assert!(!r.torn_tail);
    }

    #[test]
    fn id_gap_stops_the_valid_prefix() {
        let mut bytes: Vec<u8> = encode_record(&meta(0)).unwrap();
        bytes.extend(encode_record(&meta(2)).unwrap()); // gap: 1 missing
        let r = replay(&bytes);
        assert_eq!(r.entries.len(), 1);
        assert!(r.torn_tail, "bad final line classifies as tail debris");
    }
}
