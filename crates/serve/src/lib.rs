#![warn(missing_docs)]

//! # otif-serve — the query-serving tier over the extracted track store
//!
//! OTIF's value proposition (§1) is that once tracks are extracted,
//! *any* query answers in milliseconds by post-processing tracks. The
//! rest of this workspace ends at track files plus one-shot evaluation
//! runs; this crate is the read path that turns those files into a
//! persistent, indexed, cache-fronted serving tier — the first subsystem
//! on the *query* side of the ingest/query split that Focus pioneered
//! (cheap index at ingest time, refinement only for the clips a query
//! actually touches).
//!
//! Components:
//!
//! - [`TrackStore`] — an on-disk clip catalog. Ingest writes one JSON
//!   track file per clip plus a catalog entry holding a compact spatial
//!   summary (occupied grid cells of the track geometry, rasterized so
//!   interpolated positions are covered), a temporal summary (the
//!   maximum number of concurrently alive tracks) and a content
//!   fingerprint. Clip payloads — tracks plus their per-clip
//!   [`GridIndex`](otif_geom::GridIndex) and interval index — are
//!   deserialized lazily on first touch and cached.
//! - [`QueryServer`] — a concurrent front-end executing the existing
//!   `otif-query` aggregate / track / frame-limit operators across clips
//!   via `otif_core::evalpool::par_map`, with **index-driven clip
//!   pruning**: region and hot-spot limit queries only deserialize clips
//!   whose catalog cells intersect the predicate, and hot-spot queries
//!   additionally skip the per-frame scan of loaded clips whose spatial
//!   index proves no radius-cluster of `n` distinct tracks exists
//!   (via [`GridIndex::query_circle`](otif_geom::GridIndex::query_circle)).
//! - [`AnswerCache`] — an LRU answer cache keyed by `(canonical query,
//!   clip-set fingerprint)` with hit/miss/eviction stats; in
//!   [`CacheMode::Verify`] every hit is re-evaluated and asserted
//!   byte-identical to the cached answer.
//! - [`workload`] — a deterministic mixed read workload plus a
//!   multi-client runner reporting latency percentiles and QPS, used by
//!   the `serving` bench and `otif-cli serve-bench`.
//!
//! The determinism contract mirrors the extraction side: an *exact*
//! answer's serialized bytes are identical at any worker-thread count,
//! any cache state, and with pruning on or off (pruning only ever skips
//! clips that provably contribute nothing).
//!
//! The robustness layer (DESIGN.md §13) adds durability and overload
//! safety on top:
//!
//! - [`io`] — the injectable [`StoreIo`] filesystem seam every store
//!   read/write flows through, with typed [`StoreError`]s and a
//!   deterministic `(operation, ordinal)`-addressed fault plan
//!   ([`FaultyIo`]) for torn writes, failed renames, read errors, and
//!   crash points.
//! - [`journal`] — the append-only checksummed ingest journal whose
//!   append is the acknowledgement point; `catalog.json` becomes a
//!   rewritable checkpoint and [`store::fsck`] replays/repairs.
//! - Overload safety in [`QueryServer`]: a bounded admission queue with
//!   load shedding, per-query deadlines, and self-marking catalog-only
//!   [`Answer::Approximate`] answers for shed/deadlined queries and
//!   quarantined clips.

pub mod cache;
pub mod io;
pub mod journal;
pub mod query;
pub mod server;
pub mod store;
pub mod workload;

pub use cache::{AnswerCache, CacheStats};
pub use io::{
    FaultyIo, RealIo, StoreError, StoreFaultKind, StoreFaultPlan, StoreFaultSpec, StoreIo, StoreOp,
};
pub use query::{Answer, ServeQuery};
pub use server::{
    CacheMode, OverloadPolicy, QueryOutcome, QueryServer, ServeError, ServeOptions, ServeStats,
};
pub use store::{
    fsck, fsck_with, retry_backoff, ClipInfo, ClipMeta, FsckReport, LoadedClip, StoreOptions,
    TrackStore,
};
pub use workload::{
    mixed_workload, run_workload, run_workload_traced, LatencyStats, QueryTrace, WorkloadRun,
};
