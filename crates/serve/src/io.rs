//! The store's filesystem seam: every byte `TrackStore` reads or
//! writes flows through one injectable [`StoreIo`] implementation.
//!
//! Production uses [`RealIo`] (durable writes: create + write + fsync,
//! atomic renames). Tests and the robustness bench wrap it in
//! [`FaultyIo`], which injects a deterministic [`StoreFaultPlan`]
//! addressed by `(operation, ordinal)` — the store-side analogue of the
//! engine's `FaultPlan` from PR 3. Because the store performs its I/O
//! operations in a fixed order per ingest, a plan perturbs the exact
//! same point of the computation on every run: torn writes, failed
//! renames, read errors, transient read errors (for retry testing) and
//! hard crash points are all reproducible.
//!
//! Errors are typed ([`StoreError`]) so callers can tell corruption
//! from absence from plain I/O failure — the distinction drives
//! quarantine, retry and degraded-answer decisions upstream.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A typed store failure: I/O, corruption, absence, quarantine or a
/// store-level invariant violation. Replaces the stringly errors the
/// serving tier used before.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Underlying I/O failure (possibly transient — the store retries
    /// reads with deterministic backoff before giving up).
    Io {
        /// Path the operation targeted.
        path: String,
        /// OS / injected error description.
        detail: String,
    },
    /// File bytes do not match the catalog's content fingerprint.
    Corrupt {
        /// Clip whose payload failed verification.
        clip: usize,
        /// Fingerprint the catalog expects.
        expected: u64,
        /// Fingerprint of the bytes actually on disk.
        actual: u64,
    },
    /// A file or catalog entry that should exist does not.
    Missing {
        /// What is missing (path or catalog description).
        what: String,
    },
    /// The clip was quarantined (by `load()` verification or fsck);
    /// its payload is not served until repaired.
    Quarantined {
        /// The quarantined clip.
        clip: usize,
    },
    /// A store-level invariant does not hold (bad journal record,
    /// non-dense ids, unparsable payload that passed its checksum).
    Invalid {
        /// Description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, detail } => write!(f, "i/o error on {path}: {detail}"),
            StoreError::Corrupt {
                clip,
                expected,
                actual,
            } => write!(
                f,
                "clip {clip} is corrupt: fingerprint {actual:#018x} != cataloged {expected:#018x}"
            ),
            StoreError::Missing { what } => write!(f, "missing: {what}"),
            StoreError::Quarantined { clip } => write!(f, "clip {clip} is quarantined"),
            StoreError::Invalid { detail } => write!(f, "store invariant violated: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<StoreError> for String {
    fn from(e: StoreError) -> String {
        e.to_string()
    }
}

impl StoreError {
    /// Whether a retry with backoff can plausibly help (plain I/O
    /// failures only — corruption and absence are permanent).
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Io { .. })
    }
}

/// The primitive filesystem operations the store performs. Fault specs
/// address these by kind plus a 0-based per-kind invocation ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StoreOp {
    /// Whole-file read.
    Read,
    /// Whole-file create/truncate + write + fsync.
    Write,
    /// Atomic rename (the commit step of a tmp-file write).
    Rename,
    /// Append + fsync (the journal's commit step).
    Append,
}

impl StoreOp {
    /// All operations, in a fixed order (sweep enumeration).
    pub const ALL: [StoreOp; 4] = [
        StoreOp::Read,
        StoreOp::Write,
        StoreOp::Rename,
        StoreOp::Append,
    ];

    /// Stable lowercase label (reports, bench JSON).
    pub fn name(&self) -> &'static str {
        match self {
            StoreOp::Read => "read",
            StoreOp::Write => "write",
            StoreOp::Rename => "rename",
            StoreOp::Append => "append",
        }
    }

    fn index(self) -> usize {
        match self {
            StoreOp::Read => 0,
            StoreOp::Write => 1,
            StoreOp::Rename => 2,
            StoreOp::Append => 3,
        }
    }
}

impl fmt::Display for StoreOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What an injected store fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFaultKind {
    /// The operation fails outright without touching the filesystem.
    Error,
    /// A write/append persists only the first half of its bytes, then
    /// fails — the torn-write crash model.
    Torn,
    /// Process death: this operation and every later one fail. The
    /// directory is left exactly as the preceding operations left it.
    Crash,
    /// The next `failures` invocations (starting at the spec's ordinal)
    /// fail, then the operation succeeds — models transient read
    /// faults healed by retry.
    Transient {
        /// Number of consecutive failing invocations.
        failures: u64,
    },
}

impl StoreFaultKind {
    /// Stable lowercase label.
    pub fn name(&self) -> &'static str {
        match self {
            StoreFaultKind::Error => "error",
            StoreFaultKind::Torn => "torn",
            StoreFaultKind::Crash => "crash",
            StoreFaultKind::Transient { .. } => "transient",
        }
    }
}

/// One injected store fault: fire `kind` on the `ordinal`-th invocation
/// (0-based, counted per operation kind) of `op`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreFaultSpec {
    /// Operation kind the fault targets.
    pub op: StoreOp,
    /// 0-based invocation ordinal within that kind.
    pub ordinal: u64,
    /// What happens when it fires.
    pub kind: StoreFaultKind,
}

/// A deterministic schedule of injected store faults (empty default).
/// Same plan + same operation sequence → same perturbation, every run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreFaultPlan {
    specs: Vec<StoreFaultSpec>,
}

impl StoreFaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Convenience: a single hard crash at `(op, ordinal)`.
    pub fn crash_at(op: StoreOp, ordinal: u64) -> Self {
        StoreFaultPlan::none().with(StoreFaultSpec {
            op,
            ordinal,
            kind: StoreFaultKind::Crash,
        })
    }

    /// Convenience: a single non-crash error at `(op, ordinal)`.
    pub fn error_at(op: StoreOp, ordinal: u64) -> Self {
        StoreFaultPlan::none().with(StoreFaultSpec {
            op,
            ordinal,
            kind: StoreFaultKind::Error,
        })
    }

    /// Convenience: a torn write/append at `(op, ordinal)`.
    pub fn torn_at(op: StoreOp, ordinal: u64) -> Self {
        StoreFaultPlan::none().with(StoreFaultSpec {
            op,
            ordinal,
            kind: StoreFaultKind::Torn,
        })
    }

    /// Convenience: `failures` consecutive transient read errors
    /// starting at read ordinal `ordinal`.
    pub fn transient_reads(ordinal: u64, failures: u64) -> Self {
        StoreFaultPlan::none().with(StoreFaultSpec {
            op: StoreOp::Read,
            ordinal,
            kind: StoreFaultKind::Transient { failures },
        })
    }

    /// Add `spec` (builder style).
    pub fn with(mut self, spec: StoreFaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// The scheduled faults.
    pub fn specs(&self) -> &[StoreFaultSpec] {
        &self.specs
    }

    /// The fault (if any) scheduled for the `ordinal`-th invocation of
    /// `op`. Pure: same inputs, same answer.
    fn fire(&self, op: StoreOp, ordinal: u64) -> Option<&StoreFaultSpec> {
        self.specs.iter().find(|s| {
            s.op == op
                && match s.kind {
                    StoreFaultKind::Transient { failures } => {
                        ordinal >= s.ordinal && ordinal < s.ordinal + failures
                    }
                    _ => ordinal == s.ordinal,
                }
        })
    }
}

/// The store's filesystem interface. Implementations must be
/// thread-safe; the store shares one instance across query threads.
pub trait StoreIo: Send + Sync {
    /// Read a whole file.
    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError>;
    /// Create/truncate `path`, write `bytes`, fsync.
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError>;
    /// Append `bytes` to `path` (creating it if needed), fsync.
    fn append(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError>;
    /// Create a directory and all parents.
    fn create_dir_all(&self, path: &Path) -> Result<(), StoreError>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> Result<(), StoreError>;
    /// File names (not full paths) inside a directory, sorted.
    fn list(&self, dir: &Path) -> Result<Vec<String>, StoreError>;
}

fn io_err(path: &Path, e: impl fmt::Display) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// The production [`StoreIo`]: real filesystem, durable writes (fsync
/// after write/append) and atomic renames.
#[derive(Debug, Default)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        match std::fs::read(path) {
            Ok(b) => Ok(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(StoreError::Missing {
                what: path.display().to_string(),
            }),
            Err(e) => Err(io_err(path, e)),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let mut f = std::fs::File::create(path).map_err(|e| io_err(path, e))?;
        f.write_all(bytes).map_err(|e| io_err(path, e))?;
        f.sync_all().map_err(|e| io_err(path, e))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        std::fs::rename(from, to).map_err(|e| io_err(from, e))
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        f.write_all(bytes).map_err(|e| io_err(path, e))?;
        f.sync_all().map_err(|e| io_err(path, e))
    }

    fn create_dir_all(&self, path: &Path) -> Result<(), StoreError> {
        std::fs::create_dir_all(path).map_err(|e| io_err(path, e))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn remove_file(&self, path: &Path) -> Result<(), StoreError> {
        std::fs::remove_file(path).map_err(|e| io_err(path, e))
    }

    fn list(&self, dir: &Path) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
            let entry = entry.map_err(|e| io_err(dir, e))?;
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }
}

/// A [`StoreIo`] wrapper injecting a [`StoreFaultPlan`] over an inner
/// implementation. Each operation kind counts its invocations; when the
/// plan addresses the current `(op, ordinal)`, the fault fires. After a
/// [`StoreFaultKind::Crash`] fires, *every* subsequent operation fails
/// — the process is dead as far as the store is concerned, and the
/// directory holds exactly what the completed operations persisted.
pub struct FaultyIo<I: StoreIo> {
    inner: I,
    plan: StoreFaultPlan,
    counters: [AtomicU64; 4],
    crashed: AtomicBool,
}

impl<I: StoreIo> FaultyIo<I> {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: I, plan: StoreFaultPlan) -> Self {
        FaultyIo {
            inner,
            plan,
            counters: Default::default(),
            crashed: AtomicBool::new(false),
        }
    }

    /// Invocation counts per operation kind so far (crash-point sweeps
    /// enumerate these).
    pub fn ops(&self) -> BTreeMap<StoreOp, u64> {
        StoreOp::ALL
            .into_iter()
            .map(|op| (op, self.counters[op.index()].load(Ordering::Relaxed)))
            .collect()
    }

    /// Whether an injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Count the invocation and decide its fate: `Ok(None)` proceed
    /// normally, `Ok(Some(Torn))` proceed torn, `Err` fail.
    fn gate(&self, op: StoreOp, path: &Path) -> Result<Option<StoreFaultKind>, StoreError> {
        if self.crashed.load(Ordering::Relaxed) {
            return Err(io_err(path, "injected crash: process is dead"));
        }
        let ordinal = self.counters[op.index()].fetch_add(1, Ordering::Relaxed);
        match self.plan.fire(op, ordinal).map(|s| s.kind) {
            None => Ok(None),
            Some(StoreFaultKind::Error) | Some(StoreFaultKind::Transient { .. }) => Err(io_err(
                path,
                format!("injected {op} error at ordinal {ordinal}"),
            )),
            Some(StoreFaultKind::Crash) => {
                self.crashed.store(true, Ordering::Relaxed);
                Err(io_err(
                    path,
                    format!("injected crash at {op} ordinal {ordinal}"),
                ))
            }
            Some(StoreFaultKind::Torn) => Ok(Some(StoreFaultKind::Torn)),
        }
    }
}

impl<I: StoreIo> StoreIo for FaultyIo<I> {
    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        self.gate(StoreOp::Read, path)?;
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        match self.gate(StoreOp::Write, path)? {
            None => self.inner.write(path, bytes),
            Some(_) => {
                // torn write: half the bytes land, then the op fails
                self.inner.write(path, &bytes[..bytes.len() / 2])?;
                Err(io_err(path, "injected torn write"))
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        match self.gate(StoreOp::Rename, from)? {
            None => self.inner.rename(from, to),
            // a rename cannot tear — treat as outright failure
            Some(_) => Err(io_err(from, "injected rename failure")),
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        match self.gate(StoreOp::Append, path)? {
            None => self.inner.append(path, bytes),
            Some(_) => {
                self.inner.append(path, &bytes[..bytes.len() / 2])?;
                Err(io_err(path, "injected torn append"))
            }
        }
    }

    fn create_dir_all(&self, path: &Path) -> Result<(), StoreError> {
        if self.crashed.load(Ordering::Relaxed) {
            return Err(io_err(path, "injected crash: process is dead"));
        }
        self.inner.create_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn remove_file(&self, path: &Path) -> Result<(), StoreError> {
        if self.crashed.load(Ordering::Relaxed) {
            return Err(io_err(path, "injected crash: process is dead"));
        }
        self.inner.remove_file(path)
    }

    fn list(&self, dir: &Path) -> Result<Vec<String>, StoreError> {
        self.inner.list(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("otif-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_io_read_classifies_missing() {
        let dir = tmp("missing");
        let err = RealIo.read(&dir.join("nope.json")).unwrap_err();
        assert!(matches!(err, StoreError::Missing { .. }), "{err}");
        assert!(!err.is_transient());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulty_io_fires_at_exact_ordinal_only() {
        let dir = tmp("ordinal");
        let io = FaultyIo::new(RealIo, StoreFaultPlan::error_at(StoreOp::Write, 1));
        io.write(&dir.join("a"), b"aa").unwrap();
        let err = io.write(&dir.join("b"), b"bb").unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert!(!io.exists(&dir.join("b")), "failed write must not land");
        io.write(&dir.join("c"), b"cc").unwrap();
        assert_eq!(io.ops()[&StoreOp::Write], 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_persists_half_then_fails() {
        let dir = tmp("torn");
        let io = FaultyIo::new(RealIo, StoreFaultPlan::torn_at(StoreOp::Write, 0));
        let err = io.write(&dir.join("t"), b"12345678").unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
        assert_eq!(std::fs::read(dir.join("t")).unwrap(), b"1234");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_kills_all_subsequent_operations() {
        let dir = tmp("crash");
        let io = FaultyIo::new(RealIo, StoreFaultPlan::crash_at(StoreOp::Append, 1));
        io.append(&dir.join("j"), b"one\n").unwrap();
        assert!(io.append(&dir.join("j"), b"two\n").is_err());
        assert!(io.crashed());
        assert!(io.read(&dir.join("j")).is_err(), "reads die after crash");
        assert!(io.write(&dir.join("x"), b"x").is_err());
        assert_eq!(std::fs::read(dir.join("j")).unwrap(), b"one\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_reads_heal_after_n_failures() {
        let dir = tmp("transient");
        std::fs::write(dir.join("f"), b"payload").unwrap();
        let io = FaultyIo::new(RealIo, StoreFaultPlan::transient_reads(0, 2));
        assert!(io.read(&dir.join("f")).is_err());
        assert!(io.read(&dir.join("f")).is_err());
        assert_eq!(io.read(&dir.join("f")).unwrap(), b"payload");
        std::fs::remove_dir_all(&dir).ok();
    }
}
