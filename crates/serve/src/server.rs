//! The concurrent query front-end: cache lookup, index-driven clip
//! pruning, and parallel per-clip evaluation over the evalpool.
//!
//! Determinism contract: for a fixed store state, an answer's canonical
//! bytes are identical at any `threads` setting (per-clip results are
//! reassembled in clip-id order, the `par_map` guarantee), any cache
//! state (cached bytes are exactly what evaluation produced; the
//! fingerprint key can never serve an answer from a different clip
//! set), and with pruning on or off (pruning only skips clips that
//! provably contribute nothing to the answer).
//!
//! Pruning rules (all *necessary* conditions — see DESIGN.md §11):
//!
//! - aggregate and track queries answer one row per clip, so every clip
//!   participates — no pruning;
//! - any frame-limit query demanding ≥ n objects skips clips whose
//!   catalog `max_concurrent_tracks < n` (temporal interval summary);
//! - region queries additionally skip clips whose occupied geometry
//!   cells miss the polygon's bounding rectangle (catalog spatial
//!   summary — the clip file is never deserialized);
//! - hot-spot queries additionally skip the per-frame scan of loaded
//!   clips whose spatial index proves no `radius`-cluster of `n`
//!   distinct tracks exists anywhere, ignoring time
//!   ([`LoadedClip::hotspot_candidate`]).

use crate::cache::{AnswerCache, CacheStats};
use crate::query::{Answer, ServeQuery};
use crate::store::{LoadedClip, TrackStore};
use otif_core::evalpool::par_map;
use otif_query::{FrameLimitQuery, FrameQueryKind};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the answer cache participates in a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Bypass the cache entirely (no lookups, no inserts).
    Off,
    /// Normal operation: serve hits, fill on miss.
    On,
    /// Serve hits, but re-evaluate every hit and fail if the cached
    /// bytes differ from fresh evaluation (the byte-identity assertion).
    Verify,
}

/// Per-query execution options.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Worker threads for per-clip evaluation (0 = auto, the
    /// [`par_map`] convention).
    pub threads: usize,
    /// Enable index-driven clip pruning.
    pub pruning: bool,
    /// Cache participation.
    pub cache: CacheMode,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 0,
            pruning: true,
            cache: CacheMode::On,
        }
    }
}

/// Point-in-time serving counters.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServeStats {
    /// Queries executed (including cache hits).
    pub queries: u64,
    /// Answer-cache counters.
    pub cache: CacheStats,
    /// Clips skipped before their file was touched (catalog pruning).
    pub clips_pruned: u64,
    /// Clips evaluated (loaded and run through an operator).
    pub clips_evaluated: u64,
    /// Loaded clips whose per-frame scan was skipped by the spatial
    /// index (hot-spot prefilter).
    pub frame_scans_skipped: u64,
    /// Clip files deserialized by the store so far.
    pub clip_loads: u64,
}

/// The serving front-end over one [`TrackStore`].
pub struct QueryServer {
    store: Arc<TrackStore>,
    cache: AnswerCache,
    queries: AtomicU64,
    clips_pruned: AtomicU64,
    clips_evaluated: AtomicU64,
    frame_scans_skipped: AtomicU64,
}

impl QueryServer {
    /// A server over `store` with an answer cache of `cache_capacity`
    /// entries.
    pub fn new(store: Arc<TrackStore>, cache_capacity: usize) -> QueryServer {
        QueryServer {
            store,
            cache: AnswerCache::new(cache_capacity),
            queries: AtomicU64::new(0),
            clips_pruned: AtomicU64::new(0),
            clips_evaluated: AtomicU64::new(0),
            frame_scans_skipped: AtomicU64::new(0),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<TrackStore> {
        &self.store
    }

    /// Execute a query, returning the canonical answer bytes (the form
    /// cached, compared, and shipped to clients).
    pub fn execute_bytes(
        &self,
        q: &ServeQuery,
        opts: &ServeOptions,
    ) -> Result<Arc<Vec<u8>>, String> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let key = (q.canonical_key(), self.store.fingerprint());
        if opts.cache != CacheMode::Off {
            if let Some(hit) = self.cache.get(&key) {
                if opts.cache == CacheMode::Verify {
                    let fresh = self.evaluate(q, opts)?.to_bytes();
                    if fresh != *hit.as_slice() {
                        return Err(format!(
                            "cache verification failed for {}: cached {} bytes != fresh {} bytes",
                            q.label(),
                            hit.len(),
                            fresh.len()
                        ));
                    }
                    self.cache.record_verified();
                }
                return Ok(hit);
            }
        }
        let bytes = Arc::new(self.evaluate(q, opts)?.to_bytes());
        if opts.cache != CacheMode::Off {
            self.cache.insert(key, Arc::clone(&bytes));
        }
        Ok(bytes)
    }

    /// Execute a query and decode the answer.
    pub fn execute(&self, q: &ServeQuery, opts: &ServeOptions) -> Result<Answer, String> {
        Ok(Answer::from_bytes(&self.execute_bytes(q, opts)?))
    }

    /// Counter snapshot (server + cache + store).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            queries: self.queries.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            clips_pruned: self.clips_pruned.load(Ordering::Relaxed),
            clips_evaluated: self.clips_evaluated.load(Ordering::Relaxed),
            frame_scans_skipped: self.frame_scans_skipped.load(Ordering::Relaxed),
            clip_loads: self.store.clip_loads(),
        }
    }

    fn evaluate(&self, q: &ServeQuery, opts: &ServeOptions) -> Result<Answer, String> {
        match q {
            ServeQuery::Aggregate(_) | ServeQuery::Track(_) => {
                let ids: Vec<usize> = self.store.metas().iter().map(|m| m.id).collect();
                self.clips_evaluated
                    .fetch_add(ids.len() as u64, Ordering::Relaxed);
                let q = q.clone();
                let rows: Vec<Result<Vec<f32>, String>> =
                    par_map(opts.threads, ids, |_, id| -> Result<Vec<f32>, String> {
                        let clip = self.store.load(id)?;
                        Ok(match &q {
                            ServeQuery::Aggregate(a) => {
                                vec![a.run(&clip.tracks, clip.meta.num_frames, clip.meta.fps)]
                            }
                            ServeQuery::Track(t) => t.run(&clip.tracks, clip.meta.fps),
                            ServeQuery::FrameLimit(_) => unreachable!("outer match"),
                        })
                    });
                Ok(Answer::PerClip(
                    rows.into_iter().collect::<Result<Vec<_>, _>>()?,
                ))
            }
            ServeQuery::FrameLimit(f) => {
                let candidates = self.prune_frame_limit(f, opts.pruning);
                let results: Vec<Result<otif_query::ClipMatches, String>> =
                    par_map(opts.threads, candidates, |_, id| {
                        let clip = self.store.load(id)?;
                        Ok((id, clip.meta.fps, self.clip_frame_matches(f, &clip, opts)))
                    });
                let per_clip = results.into_iter().collect::<Result<Vec<_>, _>>()?;
                Ok(Answer::Frames(f.select_frames(&per_clip)))
            }
        }
    }

    /// Catalog-level pruning for a frame-limit query: returns candidate
    /// clip ids in ascending order.
    fn prune_frame_limit(&self, f: &FrameLimitQuery, pruning: bool) -> Vec<usize> {
        let metas = self.store.metas();
        let mut out = Vec::with_capacity(metas.len());
        for m in metas {
            let keep = !pruning
                || (m.max_concurrent_tracks >= f.n
                    && match &f.kind {
                        FrameQueryKind::Count => true,
                        FrameQueryKind::Region(poly) => m.geometry_intersects(&poly.bounds()),
                        // spatial side handled post-load by the per-clip
                        // index (hotspot_candidate)
                        FrameQueryKind::HotSpot { .. } => true,
                    });
            if keep {
                out.push(m.id);
            }
        }
        self.clips_pruned
            .fetch_add((metas.len() - out.len()) as u64, Ordering::Relaxed);
        self.clips_evaluated
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Per-clip frame matching, with the index-driven hot-spot
    /// prefilter in front of the O(frames × tracks) scan.
    fn clip_frame_matches(
        &self,
        f: &FrameLimitQuery,
        clip: &LoadedClip,
        opts: &ServeOptions,
    ) -> Vec<(usize, usize)> {
        if opts.pruning {
            if let FrameQueryKind::HotSpot { radius } = &f.kind {
                if !clip.hotspot_candidate(*radius, f.n) {
                    self.frame_scans_skipped.fetch_add(1, Ordering::Relaxed);
                    return Vec::new();
                }
            }
        }
        f.clip_matches(&clip.tracks, clip.meta.num_frames)
    }
}
