//! The concurrent query front-end: cache lookup, index-driven clip
//! pruning, parallel per-clip evaluation over the evalpool — and, since
//! the robustness PR, overload safety: a bounded admission queue with
//! load shedding, per-query deadlines, and degraded catalog-only
//! answers when the exact path is unavailable.
//!
//! Determinism contract: for a fixed store state, an *exact* answer's
//! canonical bytes are identical at any `threads` setting (per-clip
//! results are reassembled in clip-id order, the `par_map` guarantee),
//! any cache state (cached bytes are exactly what evaluation produced;
//! the fingerprint key can never serve an answer from a different clip
//! set), and with pruning on or off (pruning only skips clips that
//! provably contribute nothing). Degraded answers are self-marking
//! ([`Answer::Approximate`]) and excluded from both the cache and the
//! byte-identity contract — which queries get shed under overload is
//! timing-dependent, but a non-shed answer's bytes never are.
//!
//! Overload semantics ([`OverloadPolicy`], DESIGN.md §13): at most
//! `max_concurrent` queries evaluate at once; up to `max_queue` more
//! wait (bounded by the per-query deadline when one is set); anything
//! beyond that is **shed** — answered immediately from the catalog
//! summaries alone. A query whose deadline expires mid-evaluation, or
//! that touches a quarantined clip, degrades the same way instead of
//! failing.
//!
//! Pruning rules (all *necessary* conditions — see DESIGN.md §11):
//!
//! - aggregate and track queries answer one row per clip, so every clip
//!   participates — no pruning;
//! - any frame-limit query demanding ≥ n objects skips clips whose
//!   catalog `max_concurrent_tracks < n` (temporal interval summary);
//! - region queries additionally skip clips whose occupied geometry
//!   cells miss the polygon's bounding rectangle (catalog spatial
//!   summary — the clip file is never deserialized);
//! - hot-spot queries additionally skip the per-frame scan of loaded
//!   clips whose spatial index proves no `radius`-cluster of `n`
//!   distinct tracks exists anywhere, ignoring time
//!   ([`LoadedClip::hotspot_candidate`]).

use crate::cache::{AnswerCache, CacheStats};
use crate::io::StoreError;
use crate::query::{Answer, ServeQuery};
use crate::store::{LoadedClip, TrackStore};
use otif_core::evalpool::par_map;
use otif_query::{FrameLimitQuery, FrameQueryKind};
use serde::Serialize;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A typed serving failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The store failed in a way degradation could not absorb.
    Store(StoreError),
    /// Verify-mode cache hit whose bytes no longer match fresh
    /// evaluation.
    CacheVerify {
        /// The query's label.
        label: String,
        /// Cached byte length.
        cached: usize,
        /// Freshly evaluated byte length.
        fresh: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Store(e) => write!(f, "{e}"),
            ServeError::CacheVerify {
                label,
                cached,
                fresh,
            } => write!(
                f,
                "cache verification failed for {label}: cached {cached} bytes != fresh {fresh} bytes"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> ServeError {
        ServeError::Store(e)
    }
}

impl From<ServeError> for String {
    fn from(e: ServeError) -> String {
        e.to_string()
    }
}

/// How the answer cache participates in a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Bypass the cache entirely (no lookups, no inserts).
    Off,
    /// Normal operation: serve hits, fill on miss.
    On,
    /// Serve hits, but re-evaluate every hit and fail if the cached
    /// bytes differ from fresh evaluation (the byte-identity assertion).
    Verify,
}

/// Per-query execution options.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Worker threads for per-clip evaluation (0 = auto, the
    /// [`par_map`] convention).
    pub threads: usize,
    /// Enable index-driven clip pruning.
    pub pruning: bool,
    /// Cache participation.
    pub cache: CacheMode,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 0,
            pruning: true,
            cache: CacheMode::On,
        }
    }
}

/// Server-wide overload policy: admission bounds and the per-query
/// deadline. The default is fully permissive (unbounded concurrency, no
/// deadline) — the pre-robustness behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverloadPolicy {
    /// Queries evaluating concurrently before new arrivals queue
    /// (0 = unbounded; admission control disabled).
    pub max_concurrent: usize,
    /// Arrivals allowed to wait for an evaluation slot; anything beyond
    /// is shed immediately.
    pub max_queue: usize,
    /// Per-query deadline, measured from arrival: bounds both queue
    /// wait and evaluation. Expiry degrades the answer to catalog-only.
    pub deadline: Option<Duration>,
}

/// Point-in-time serving counters.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServeStats {
    /// Queries executed (including cache hits and shed queries).
    pub queries: u64,
    /// Answer-cache counters.
    pub cache: CacheStats,
    /// Clips skipped before their file was touched (catalog pruning).
    pub clips_pruned: u64,
    /// Clips evaluated (loaded and run through an operator).
    pub clips_evaluated: u64,
    /// Loaded clips whose per-frame scan was skipped by the spatial
    /// index (hot-spot prefilter).
    pub frame_scans_skipped: u64,
    /// Clip files deserialized by the store so far.
    pub clip_loads: u64,
    /// Queries shed at admission (answered catalog-only).
    pub shed_queries: u64,
    /// Degraded answers produced (shed + deadline + quarantine).
    pub degraded_answers: u64,
    /// Clips currently quarantined in the store.
    pub quarantined_clips: u64,
    /// Transient read failures the store retried.
    pub read_retries: u64,
    /// Virtual seconds of deterministic retry backoff scheduled.
    pub retry_backoff_seconds: f64,
}

/// An answer plus its degradation marker (`None` = exact).
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Canonical answer bytes.
    pub bytes: Arc<Vec<u8>>,
    /// Why the answer is degraded, if it is.
    pub degraded: Option<String>,
}

/// A per-clip evaluation failure inside the parallel map.
enum EvalFail {
    /// The query's deadline expired before this clip was evaluated.
    Deadline,
    /// This clip's payload could not be served.
    Clip(usize, StoreError),
}

#[derive(Default)]
struct Admission {
    running: usize,
    queued: usize,
}

/// The serving front-end over one [`TrackStore`].
pub struct QueryServer {
    store: Arc<TrackStore>,
    cache: AnswerCache,
    policy: OverloadPolicy,
    admission: Mutex<Admission>,
    admit_cv: Condvar,
    queries: AtomicU64,
    clips_pruned: AtomicU64,
    clips_evaluated: AtomicU64,
    frame_scans_skipped: AtomicU64,
    shed_queries: AtomicU64,
    degraded_answers: AtomicU64,
}

impl QueryServer {
    /// A server over `store` with an answer cache of `cache_capacity`
    /// entries and the permissive default [`OverloadPolicy`].
    pub fn new(store: Arc<TrackStore>, cache_capacity: usize) -> QueryServer {
        Self::with_policy(store, cache_capacity, OverloadPolicy::default())
    }

    /// A server with an explicit overload policy.
    pub fn with_policy(
        store: Arc<TrackStore>,
        cache_capacity: usize,
        policy: OverloadPolicy,
    ) -> QueryServer {
        QueryServer {
            store,
            cache: AnswerCache::new(cache_capacity),
            policy,
            admission: Mutex::new(Admission::default()),
            admit_cv: Condvar::new(),
            queries: AtomicU64::new(0),
            clips_pruned: AtomicU64::new(0),
            clips_evaluated: AtomicU64::new(0),
            frame_scans_skipped: AtomicU64::new(0),
            shed_queries: AtomicU64::new(0),
            degraded_answers: AtomicU64::new(0),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<TrackStore> {
        &self.store
    }

    /// The active overload policy.
    pub fn policy(&self) -> &OverloadPolicy {
        &self.policy
    }

    /// Try to win an evaluation slot, queueing (bounded by `deadline`)
    /// when the server is saturated. `false` = shed.
    fn admit(&self, deadline: Option<Instant>) -> bool {
        if self.policy.max_concurrent == 0 {
            return true;
        }
        let mut st = self.admission.lock().unwrap();
        if st.running < self.policy.max_concurrent {
            st.running += 1;
            return true;
        }
        if st.queued >= self.policy.max_queue {
            return false;
        }
        st.queued += 1;
        loop {
            if st.running < self.policy.max_concurrent {
                st.queued -= 1;
                st.running += 1;
                return true;
            }
            match deadline {
                None => st = self.admit_cv.wait(st).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        st.queued -= 1;
                        return false;
                    }
                    let (guard, _timeout) = self.admit_cv.wait_timeout(st, d - now).unwrap();
                    st = guard;
                }
            }
        }
    }

    /// Release an evaluation slot and wake one queued waiter.
    fn release(&self) {
        if self.policy.max_concurrent == 0 {
            return;
        }
        let mut st = self.admission.lock().unwrap();
        st.running -= 1;
        drop(st);
        self.admit_cv.notify_one();
    }

    /// Execute a query under the overload policy. Never fails for
    /// overload or quarantine reasons — those degrade the answer to a
    /// marked catalog-only approximation instead. Hard failures
    /// (unreadable store, verify mismatch) still error.
    pub fn execute_robust(
        &self,
        q: &ServeQuery,
        opts: &ServeOptions,
    ) -> Result<QueryOutcome, ServeError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let deadline = self.policy.deadline.map(|d| Instant::now() + d);
        if !self.admit(deadline) {
            self.shed_queries.fetch_add(1, Ordering::Relaxed);
            self.degraded_answers.fetch_add(1, Ordering::Relaxed);
            self.cache.record_bypass();
            let reason = "shed: admission queue full";
            let ans = q.approximate_answer(self.store.metas(), reason);
            return Ok(QueryOutcome {
                bytes: Arc::new(ans.to_bytes()),
                degraded: Some(reason.to_string()),
            });
        }
        let result = self.execute_admitted(q, opts, deadline);
        self.release();
        result
    }

    /// The admitted path: cache for exact answers, degraded evaluation
    /// for deadline expiry and quarantined clips.
    fn execute_admitted(
        &self,
        q: &ServeQuery,
        opts: &ServeOptions,
        deadline: Option<Instant>,
    ) -> Result<QueryOutcome, ServeError> {
        let key = (q.canonical_key(), self.store.fingerprint());
        if opts.cache != CacheMode::Off {
            if let Some(hit) = self.cache.get(&key) {
                if opts.cache == CacheMode::Verify {
                    self.verify_hit(q, opts, &hit)?;
                }
                return Ok(QueryOutcome {
                    bytes: hit,
                    degraded: None,
                });
            }
        }
        let (answer, degraded) = self.evaluate_robust(q, opts, deadline)?;
        let bytes = Arc::new(answer.to_bytes());
        match &degraded {
            None => {
                if opts.cache != CacheMode::Off {
                    self.cache.insert(key, Arc::clone(&bytes));
                }
            }
            Some(_) => {
                self.degraded_answers.fetch_add(1, Ordering::Relaxed);
                self.cache.record_bypass();
            }
        }
        Ok(QueryOutcome { bytes, degraded })
    }

    /// Execute a query, returning the canonical answer bytes (the form
    /// cached, compared, and shipped to clients). This is the *strict*
    /// path: no admission control, no deadline, and any clip the exact
    /// evaluation cannot serve — including quarantined ones — is an
    /// error rather than a degraded answer.
    pub fn execute_bytes(
        &self,
        q: &ServeQuery,
        opts: &ServeOptions,
    ) -> Result<Arc<Vec<u8>>, ServeError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let key = (q.canonical_key(), self.store.fingerprint());
        if opts.cache != CacheMode::Off {
            if let Some(hit) = self.cache.get(&key) {
                if opts.cache == CacheMode::Verify {
                    self.verify_hit(q, opts, &hit)?;
                }
                return Ok(hit);
            }
        }
        let bytes = Arc::new(self.evaluate(q, opts)?.to_bytes());
        if opts.cache != CacheMode::Off {
            self.cache.insert(key, Arc::clone(&bytes));
        }
        Ok(bytes)
    }

    /// Execute a query and decode the answer (strict path).
    pub fn execute(&self, q: &ServeQuery, opts: &ServeOptions) -> Result<Answer, ServeError> {
        Ok(Answer::from_bytes(&self.execute_bytes(q, opts)?))
    }

    /// Re-evaluate a cache hit and assert byte identity (verify mode).
    fn verify_hit(
        &self,
        q: &ServeQuery,
        opts: &ServeOptions,
        hit: &Arc<Vec<u8>>,
    ) -> Result<(), ServeError> {
        let fresh = self.evaluate(q, opts)?.to_bytes();
        if fresh != *hit.as_slice() {
            return Err(ServeError::CacheVerify {
                label: q.label(),
                cached: hit.len(),
                fresh: fresh.len(),
            });
        }
        self.cache.record_verified();
        Ok(())
    }

    /// Counter snapshot (server + cache + store).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            queries: self.queries.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            clips_pruned: self.clips_pruned.load(Ordering::Relaxed),
            clips_evaluated: self.clips_evaluated.load(Ordering::Relaxed),
            frame_scans_skipped: self.frame_scans_skipped.load(Ordering::Relaxed),
            clip_loads: self.store.clip_loads(),
            shed_queries: self.shed_queries.load(Ordering::Relaxed),
            degraded_answers: self.degraded_answers.load(Ordering::Relaxed),
            quarantined_clips: self.store.quarantined().len() as u64,
            read_retries: self.store.read_retry_count(),
            retry_backoff_seconds: self.store.retry_backoff_seconds(),
        }
    }

    /// Per-clip rows for an aggregate/track query, in clip-id order.
    fn eval_rows(
        &self,
        q: &ServeQuery,
        opts: &ServeOptions,
        deadline: Option<Instant>,
    ) -> Vec<Result<Vec<f32>, EvalFail>> {
        let ids: Vec<usize> = self.store.metas().iter().map(|m| m.id).collect();
        self.clips_evaluated
            .fetch_add(ids.len() as u64, Ordering::Relaxed);
        let q = q.clone();
        par_map(opts.threads, ids, move |_, id| {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(EvalFail::Deadline);
            }
            let clip = self.store.load(id).map_err(|e| EvalFail::Clip(id, e))?;
            Ok(match &q {
                ServeQuery::Aggregate(a) => {
                    vec![a.run(&clip.tracks, clip.meta.num_frames, clip.meta.fps)]
                }
                ServeQuery::Track(t) => t.run(&clip.tracks, clip.meta.fps),
                ServeQuery::FrameLimit(_) => unreachable!("rows are aggregate/track only"),
            })
        })
    }

    /// Per-candidate frame matches for a frame-limit query.
    fn eval_matches(
        &self,
        f: &FrameLimitQuery,
        opts: &ServeOptions,
        deadline: Option<Instant>,
    ) -> Vec<Result<otif_query::ClipMatches, EvalFail>> {
        let candidates = self.prune_frame_limit(f, opts.pruning);
        par_map(opts.threads, candidates, move |_, id| {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(EvalFail::Deadline);
            }
            let clip = self.store.load(id).map_err(|e| EvalFail::Clip(id, e))?;
            Ok((id, clip.meta.fps, self.clip_frame_matches(f, &clip, opts)))
        })
    }

    /// Strict exact evaluation: any unavailable clip is an error.
    fn evaluate(&self, q: &ServeQuery, opts: &ServeOptions) -> Result<Answer, ServeError> {
        match q {
            ServeQuery::Aggregate(_) | ServeQuery::Track(_) => {
                let mut rows = Vec::with_capacity(self.store.len());
                for r in self.eval_rows(q, opts, None) {
                    match r {
                        Ok(row) => rows.push(row),
                        Err(EvalFail::Clip(_, e)) => return Err(e.into()),
                        Err(EvalFail::Deadline) => unreachable!("strict path has no deadline"),
                    }
                }
                Ok(Answer::PerClip(rows))
            }
            ServeQuery::FrameLimit(f) => {
                let mut per_clip = Vec::new();
                for r in self.eval_matches(f, opts, None) {
                    match r {
                        Ok(m) => per_clip.push(m),
                        Err(EvalFail::Clip(_, e)) => return Err(e.into()),
                        Err(EvalFail::Deadline) => unreachable!("strict path has no deadline"),
                    }
                }
                Ok(Answer::Frames(f.select_frames(&per_clip)))
            }
        }
    }

    /// Robust evaluation: deadline expiry degrades the whole answer to
    /// catalog-only; a quarantined/corrupt clip degrades just that
    /// clip's contribution (approximate row, or skipped matches); any
    /// other store failure — already past the store's own bounded
    /// retries — is a hard error.
    fn evaluate_robust(
        &self,
        q: &ServeQuery,
        opts: &ServeOptions,
        deadline: Option<Instant>,
    ) -> Result<(Answer, Option<String>), ServeError> {
        let quarantine_like = |e: &StoreError| {
            matches!(
                e,
                StoreError::Quarantined { .. } | StoreError::Corrupt { .. }
            )
        };
        match q {
            ServeQuery::Aggregate(_) | ServeQuery::Track(_) => {
                let metas = self.store.metas();
                let mut rows = Vec::with_capacity(metas.len());
                let mut reason: Option<String> = None;
                for (idx, r) in self.eval_rows(q, opts, deadline).into_iter().enumerate() {
                    match r {
                        Ok(row) => rows.push(row),
                        Err(EvalFail::Deadline) => {
                            let reason = "deadline: evaluation exceeded the per-query deadline";
                            return Ok((q.approximate_answer(metas, reason), Some(reason.into())));
                        }
                        Err(EvalFail::Clip(id, e)) if quarantine_like(&e) => {
                            rows.push(q.approximate_row(&metas[idx]));
                            reason = Some(format!("quarantine: clip {id} served from catalog"));
                        }
                        Err(EvalFail::Clip(_, e)) => return Err(e.into()),
                    }
                }
                Ok(match reason {
                    None => (Answer::PerClip(rows), None),
                    Some(r) => (
                        Answer::Approximate {
                            reason: r.clone(),
                            rows,
                            frames: Vec::new(),
                        },
                        Some(r),
                    ),
                })
            }
            ServeQuery::FrameLimit(f) => {
                let mut per_clip = Vec::new();
                let mut reason: Option<String> = None;
                for r in self.eval_matches(f, opts, deadline) {
                    match r {
                        Ok(m) => per_clip.push(m),
                        Err(EvalFail::Deadline) => {
                            let reason = "deadline: evaluation exceeded the per-query deadline";
                            return Ok((
                                q.approximate_answer(self.store.metas(), reason),
                                Some(reason.into()),
                            ));
                        }
                        Err(EvalFail::Clip(id, e)) if quarantine_like(&e) => {
                            reason = Some(format!("quarantine: clip {id} excluded from frames"));
                        }
                        Err(EvalFail::Clip(_, e)) => return Err(e.into()),
                    }
                }
                let frames = f.select_frames(&per_clip);
                Ok(match reason {
                    None => (Answer::Frames(frames), None),
                    Some(r) => (
                        Answer::Approximate {
                            reason: r.clone(),
                            rows: Vec::new(),
                            frames,
                        },
                        Some(r),
                    ),
                })
            }
        }
    }

    /// Catalog-level pruning for a frame-limit query: returns candidate
    /// clip ids in ascending order.
    fn prune_frame_limit(&self, f: &FrameLimitQuery, pruning: bool) -> Vec<usize> {
        let metas = self.store.metas();
        let mut out = Vec::with_capacity(metas.len());
        for m in metas {
            let keep = !pruning
                || (m.max_concurrent_tracks >= f.n
                    && match &f.kind {
                        FrameQueryKind::Count => true,
                        FrameQueryKind::Region(poly) => m.geometry_intersects(&poly.bounds()),
                        // spatial side handled post-load by the per-clip
                        // index (hotspot_candidate)
                        FrameQueryKind::HotSpot { .. } => true,
                    });
            if keep {
                out.push(m.id);
            }
        }
        self.clips_pruned
            .fetch_add((metas.len() - out.len()) as u64, Ordering::Relaxed);
        self.clips_evaluated
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Per-clip frame matching, with the index-driven hot-spot
    /// prefilter in front of the O(frames × tracks) scan.
    fn clip_frame_matches(
        &self,
        f: &FrameLimitQuery,
        clip: &LoadedClip,
        opts: &ServeOptions,
    ) -> Vec<(usize, usize)> {
        if opts.pruning {
            if let FrameQueryKind::HotSpot { radius } = &f.kind {
                if !clip.hotspot_candidate(*radius, f.n) {
                    self.frame_scans_skipped.fetch_add(1, Ordering::Relaxed);
                    return Vec::new();
                }
            }
        }
        f.clip_matches(&clip.tracks, clip.meta.num_frames)
    }
}
