//! Deterministic mixed read workloads and a multi-client runner.
//!
//! [`mixed_workload`] builds the query mix the serving bench and the
//! CLI smoke share: repeated aggregates (cache-friendly), scan-heavy
//! frame-limit queries, a prunable corner region query, and hot-spot
//! queries at two radii — shuffled with a fixed seed so every run at
//! every thread count executes the same sequence. [`run_workload`]
//! drives a [`QueryServer`] from `clients` concurrent threads and
//! reports latency percentiles, QPS, and a fingerprint over all answer
//! bytes in workload order (the byte-identity comparator across runs).
//!
//! Under an [`OverloadPolicy`](crate::server::OverloadPolicy) some
//! queries may be shed or degraded — *which* ones is timing-dependent,
//! so byte-identity is then stated per query over the non-degraded
//! subset: [`run_workload_traced`] returns one [`QueryTrace`] per query
//! (latency, answer fingerprint, degraded flag) for exactly that
//! comparison. All client threads start behind a barrier, so a
//! saturating burst genuinely arrives at once.

use crate::query::ServeQuery;
use crate::server::{QueryServer, ServeError, ServeOptions};
use crate::store::{fnv1a, ClipMeta};
use otif_geom::{Point, Polygon};
use otif_query::{AggregateQuery, FrameLimitQuery, FrameQueryKind, TrackQuery};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// Build the deterministic mixed read workload: `repeats` passes over
/// the base query mix, shuffled by `seed`. Region and hot-spot
/// parameters are derived from the catalog's clip dimensions so the
/// same generator works at any scale.
pub fn mixed_workload(metas: &[ClipMeta], repeats: usize, seed: u64) -> Vec<ServeQuery> {
    let w = metas.iter().map(|m| m.width).fold(64.0_f32, f32::max);
    let h = metas.iter().map(|m| m.height).fold(64.0_f32, f32::max);
    let base = vec![
        ServeQuery::Aggregate(AggregateQuery::AvgVisible),
        ServeQuery::Aggregate(AggregateQuery::TrafficVolume),
        ServeQuery::Aggregate(AggregateQuery::PeakOccupancy),
        ServeQuery::Track(TrackQuery::Count),
        ServeQuery::Track(TrackQuery::HardBraking { decel: 60.0 }),
        // scan-heavy: touches every frame of every clip
        ServeQuery::FrameLimit(FrameLimitQuery {
            kind: FrameQueryKind::Count,
            n: 1,
            limit: 25,
            min_separation_s: 5.0,
        }),
        // prunable: a sliver in the top-left corner most clips' traffic
        // never enters
        ServeQuery::FrameLimit(FrameLimitQuery {
            kind: FrameQueryKind::Region(Polygon::new(vec![
                Point { x: 0.0, y: 0.0 },
                Point {
                    x: w * 0.04,
                    y: 0.0,
                },
                Point {
                    x: w * 0.04,
                    y: h * 0.04,
                },
                Point {
                    x: 0.0,
                    y: h * 0.04,
                },
            ])),
            n: 1,
            limit: 25,
            min_separation_s: 5.0,
        }),
        ServeQuery::FrameLimit(FrameLimitQuery {
            kind: FrameQueryKind::HotSpot {
                radius: (w.min(h) * 0.08).max(8.0),
            },
            n: 2,
            limit: 25,
            min_separation_s: 5.0,
        }),
        ServeQuery::FrameLimit(FrameLimitQuery {
            kind: FrameQueryKind::HotSpot {
                radius: (w.min(h) * 0.05).max(5.0),
            },
            n: 3,
            limit: 25,
            min_separation_s: 5.0,
        }),
    ];
    let mut queries: Vec<ServeQuery> = Vec::with_capacity(base.len() * repeats);
    for _ in 0..repeats.max(1) {
        queries.extend(base.iter().cloned());
    }
    // Fisher-Yates with a fixed stream so the sequence is a pure
    // function of (metas, repeats, seed)
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in (1..queries.len()).rev() {
        let j = rng.gen_range(0..=i);
        queries.swap(i, j);
    }
    queries
}

/// Latency summary over one workload run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencyStats {
    /// Queries completed.
    pub count: usize,
    /// Wall-clock for the whole run in seconds.
    pub wall_seconds: f64,
    /// Completed queries per wall-clock second.
    pub qps: f64,
    /// Mean per-query latency in milliseconds.
    pub mean_ms: f64,
    /// Median per-query latency in milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile latency in milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Worst per-query latency in milliseconds.
    pub max_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl LatencyStats {
    fn from_latencies(mut ms: Vec<f64>, wall_seconds: f64) -> LatencyStats {
        let count = ms.len();
        ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = if count == 0 {
            0.0
        } else {
            ms.iter().sum::<f64>() / count as f64
        };
        LatencyStats {
            count,
            wall_seconds,
            qps: if wall_seconds > 0.0 {
                count as f64 / wall_seconds
            } else {
                0.0
            },
            mean_ms: mean,
            p50_ms: percentile(&ms, 50.0),
            p90_ms: percentile(&ms, 90.0),
            p99_ms: percentile(&ms, 99.0),
            max_ms: ms.last().copied().unwrap_or(0.0),
        }
    }
}

/// One query's observed outcome within a workload run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct QueryTrace {
    /// Per-query latency in milliseconds.
    pub ms: f64,
    /// FNV-1a over the answer's canonical bytes.
    pub fingerprint: u64,
    /// Whether the answer was degraded (shed / deadline / quarantine).
    pub degraded: bool,
}

/// The outcome of one multi-client workload run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct WorkloadRun {
    /// Concurrent client threads used.
    pub clients: usize,
    /// Latency and throughput summary.
    pub latency: LatencyStats,
    /// FNV-1a over all answer bytes in workload order — equal
    /// fingerprints mean byte-identical answers query-for-query. Only
    /// meaningful when `degraded == 0` (degraded answers are
    /// timing-dependent by design; compare per-query traces instead).
    pub answers_fingerprint: u64,
    /// Queries answered degraded (shed, deadlined, or quarantine).
    pub degraded: usize,
}

/// Run `queries` against `server` from `clients` concurrent threads,
/// returning the run summary plus one [`QueryTrace`] per query in
/// workload order. Clients pull queries from a shared counter, so the
/// assignment of query to client is timing-dependent — but each
/// *exact* answer's bytes are not, which is what per-trace fingerprint
/// comparison checks.
pub fn run_workload_traced(
    server: &QueryServer,
    queries: &[ServeQuery],
    clients: usize,
    opts: &ServeOptions,
) -> Result<(WorkloadRun, Vec<QueryTrace>), ServeError> {
    let clients = clients.max(1);
    let next = AtomicUsize::new(0);
    let barrier = Barrier::new(clients);
    let slots: Vec<Mutex<Option<QueryTrace>>> =
        (0..queries.len()).map(|_| Mutex::new(None)).collect();
    let first_err: Mutex<Option<ServeError>> = Mutex::new(None);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                barrier.wait(); // the burst arrives at once
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() || first_err.lock().unwrap().is_some() {
                        return;
                    }
                    let t0 = Instant::now();
                    match server.execute_robust(&queries[i], opts) {
                        Ok(outcome) => {
                            let ms = t0.elapsed().as_secs_f64() * 1e3;
                            *slots[i].lock().unwrap() = Some(QueryTrace {
                                ms,
                                fingerprint: fnv1a(&outcome.bytes),
                                degraded: outcome.degraded.is_some(),
                            });
                        }
                        Err(e) => {
                            let mut err = first_err.lock().unwrap();
                            if err.is_none() {
                                *err = Some(e);
                            }
                            return;
                        }
                    }
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    if let Some(e) = first_err.lock().unwrap().take() {
        return Err(e);
    }
    let mut latencies = Vec::with_capacity(queries.len());
    let mut traces = Vec::with_capacity(queries.len());
    let mut degraded = 0usize;
    let mut combined: u64 = 0xcbf2_9ce4_8422_2325;
    for slot in &slots {
        let trace =
            slot.lock()
                .unwrap()
                .ok_or(ServeError::Store(crate::io::StoreError::Invalid {
                    detail: "workload slot left unfilled".to_string(),
                }))?;
        latencies.push(trace.ms);
        degraded += trace.degraded as usize;
        combined = fnv1a(&[combined.to_le_bytes(), trace.fingerprint.to_le_bytes()].concat());
        traces.push(trace);
    }
    Ok((
        WorkloadRun {
            clients,
            latency: LatencyStats::from_latencies(latencies, wall),
            answers_fingerprint: combined,
            degraded,
        },
        traces,
    ))
}

/// Run `queries` against `server` and return the summary only (see
/// [`run_workload_traced`]).
pub fn run_workload(
    server: &QueryServer,
    queries: &[ServeQuery],
    clients: usize,
    opts: &ServeOptions,
) -> Result<WorkloadRun, ServeError> {
    run_workload_traced(server, queries, clients, opts).map(|(run, _)| run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_in_seed() {
        let metas: Vec<ClipMeta> = Vec::new();
        let a = mixed_workload(&metas, 3, 11);
        let b = mixed_workload(&metas, 3, 11);
        let c = mixed_workload(&metas, 3, 12);
        assert_eq!(a.len(), 27);
        let keys =
            |qs: &[ServeQuery]| -> Vec<String> { qs.iter().map(|q| q.canonical_key()).collect() };
        assert_eq!(keys(&a), keys(&b));
        assert_ne!(keys(&a), keys(&c));
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let s = LatencyStats::from_latencies(vec![5.0, 1.0, 3.0, 2.0, 4.0], 0.5);
        assert_eq!(s.count, 5);
        assert!((s.p50_ms - 3.0).abs() < 1e-9);
        assert!((s.max_ms - 5.0).abs() < 1e-9);
        assert!((s.qps - 10.0).abs() < 1e-9);
    }
}
