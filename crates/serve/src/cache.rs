//! The answer cache: canonical answer bytes keyed by `(canonical
//! query, clip-set fingerprint)`, LRU-evicted, with hit/miss/eviction
//! stats.
//!
//! Keying on the clip-set fingerprint makes invalidation structural:
//! ingesting any clip changes the store fingerprint, so every answer
//! cached against the old clip set simply stops being addressable (and
//! ages out of the LRU). Cached bytes are exactly what evaluation
//! produced — [`CacheMode::Verify`](crate::CacheMode) re-evaluates on
//! every hit and asserts the bytes still match.

use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: canonical query text + clip-set fingerprint.
pub type CacheKey = (String, u64);

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to evaluation.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Hits re-evaluated and byte-checked (verify mode).
    pub verified: u64,
    /// Degraded (approximate) answers that skipped the cache entirely —
    /// only exact answers are cacheable.
    pub bypasses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Inner {
    map: HashMap<CacheKey, (Arc<Vec<u8>>, u64)>,
    tick: u64,
}

/// A bounded LRU cache of canonical answer bytes.
pub struct AnswerCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    verified: AtomicU64,
    bypasses: AtomicU64,
}

impl AnswerCache {
    /// A cache holding at most `capacity` answers (0 disables storage;
    /// every lookup misses).
    pub fn new(capacity: usize) -> AnswerCache {
        AnswerCache {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            verified: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        }
    }

    /// Look up an answer, refreshing its LRU position on hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((bytes, last_used)) => {
                *last_used = tick;
                let out = Arc::clone(bytes);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(out)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert an answer, evicting the least-recently-used entry if full.
    pub fn insert(&self, key: CacheKey, bytes: Arc<Vec<u8>>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(key, (bytes, tick));
    }

    /// Record a verified hit (verify mode re-evaluated and compared).
    pub fn record_verified(&self) {
        self.verified.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an answer that bypassed the cache because it was degraded.
    pub fn record_bypass(&self) {
        self.bypasses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            verified: self.verified.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            entries: self.inner.lock().unwrap().map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> CacheKey {
        (s.to_string(), 7)
    }

    fn bytes(s: &str) -> Arc<Vec<u8>> {
        Arc::new(s.as_bytes().to_vec())
    }

    #[test]
    fn hit_miss_and_fingerprint_isolation() {
        let c = AnswerCache::new(4);
        assert!(c.get(&key("q1")).is_none());
        c.insert(key("q1"), bytes("a1"));
        assert_eq!(c.get(&key("q1")).unwrap().as_slice(), b"a1");
        // same query text against a different clip set misses
        assert!(c.get(&("q1".to_string(), 8)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = AnswerCache::new(2);
        c.insert(key("a"), bytes("a"));
        c.insert(key("b"), bytes("b"));
        c.get(&key("a")); // refresh a
        c.insert(key("c"), bytes("c")); // evicts b
        assert!(c.get(&key("a")).is_some());
        assert!(c.get(&key("b")).is_none());
        assert!(c.get(&key("c")).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let c = AnswerCache::new(0);
        c.insert(key("a"), bytes("a"));
        assert!(c.get(&key("a")).is_none());
        assert_eq!(c.stats().entries, 0);
    }
}
