//! The serving tier's query and answer types.
//!
//! A [`ServeQuery`] wraps the existing `otif-query` operators; its
//! canonical form (stable serde serialization) is the cache key, and an
//! [`Answer`]'s canonical bytes are what the determinism contract is
//! stated over: byte-identical at any thread count, cache state, and
//! pruning setting.
//!
//! Overloaded or partially-degraded serving produces
//! [`Answer::Approximate`] — a catalog-only estimate that is
//! *self-marking*: its canonical bytes carry the degradation reason, so
//! a degraded answer can never be mistaken for (or cached as) an exact
//! one. Only exact answers participate in the byte-identity contract.

use crate::store::ClipMeta;
use otif_query::{AggregateQuery, FrameLimitQuery, FrameRef, TrackQuery};
use serde::{Deserialize, Serialize};

/// A query the serving tier answers from stored tracks alone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServeQuery {
    /// Per-clip aggregate (§3's example queries 3–4).
    Aggregate(AggregateQuery),
    /// Per-clip object-track query (§4.1).
    Track(TrackQuery),
    /// Cross-clip frame-level limit query (§4.2).
    FrameLimit(FrameLimitQuery),
}

impl ServeQuery {
    /// Canonical cache-key text: the stable serde serialization. Two
    /// queries with equal canonical keys are the same query.
    pub fn canonical_key(&self) -> String {
        serde_json::to_string(self).expect("queries serialize")
    }

    /// Short human-readable label for logs and bench tables.
    pub fn label(&self) -> String {
        match self {
            ServeQuery::Aggregate(a) => format!("agg:{a:?}"),
            ServeQuery::Track(TrackQuery::Count) => "track:count".into(),
            ServeQuery::Track(TrackQuery::HardBraking { decel }) => {
                format!("track:braking>{decel}")
            }
            ServeQuery::Track(TrackQuery::PathBreakdown { patterns, .. }) => {
                format!("track:breakdown[{}]", patterns.len())
            }
            ServeQuery::FrameLimit(f) => {
                let kind = match &f.kind {
                    otif_query::FrameQueryKind::Count => "count".to_string(),
                    otif_query::FrameQueryKind::Region(_) => "region".to_string(),
                    otif_query::FrameQueryKind::HotSpot { radius } => format!("hotspot r={radius}"),
                };
                format!("frames:{kind} n={} limit={}", f.n, f.limit)
            }
        }
    }

    /// Catalog-only approximate row for one clip — computed from the
    /// always-resident [`ClipMeta`] summaries without touching the clip
    /// file. Used when the exact payload is unavailable (quarantined)
    /// or the query was shed / deadlined. The estimates lean on the
    /// same summaries pruning uses: `max_concurrent_tracks` bounds
    /// per-frame visibility, `num_tracks` bounds volume.
    pub fn approximate_row(&self, meta: &ClipMeta) -> Vec<f32> {
        match self {
            ServeQuery::Aggregate(AggregateQuery::AvgVisible) => {
                // tracks alive at once, discounted: mean ≤ peak
                vec![meta.max_concurrent_tracks as f32 * 0.5]
            }
            ServeQuery::Aggregate(AggregateQuery::TrafficVolume) => {
                let minutes = meta.num_frames as f32 / meta.fps.max(1e-6) / 60.0;
                vec![if minutes > 0.0 {
                    meta.num_tracks as f32 / minutes
                } else {
                    0.0
                }]
            }
            ServeQuery::Aggregate(AggregateQuery::PeakOccupancy) => {
                vec![meta.max_concurrent_tracks as f32]
            }
            ServeQuery::Track(TrackQuery::Count) => vec![meta.num_tracks as f32],
            // no catalog summary speaks to kinematics or paths: report
            // zeros of the right arity (the marker string carries the
            // caveat)
            ServeQuery::Track(TrackQuery::HardBraking { .. }) => vec![0.0],
            ServeQuery::Track(TrackQuery::PathBreakdown { patterns, .. }) => {
                vec![0.0; patterns.len()]
            }
            // frame-limit answers are frame lists, not rows
            ServeQuery::FrameLimit(_) => Vec::new(),
        }
    }

    /// Whole-store catalog-only approximation: one approximate row per
    /// clip (frame-limit queries get an empty frame list — the catalog
    /// cannot name matching frames).
    pub fn approximate_answer(&self, metas: &[ClipMeta], reason: &str) -> Answer {
        match self {
            ServeQuery::FrameLimit(_) => Answer::Approximate {
                reason: reason.to_string(),
                rows: Vec::new(),
                frames: Vec::new(),
            },
            _ => Answer::Approximate {
                reason: reason.to_string(),
                rows: metas.iter().map(|m| self.approximate_row(m)).collect(),
                frames: Vec::new(),
            },
        }
    }
}

/// A serving answer in canonical form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Answer {
    /// One row per ingested clip, in clip-id order (aggregate and track
    /// queries; row layout is the operator's count vector).
    PerClip(Vec<Vec<f32>>),
    /// Selected frames of a frame-limit query; `FrameRef::clip` is the
    /// store clip id.
    Frames(Vec<FrameRef>),
    /// A degraded answer: catalog-only estimates (or exact rows with
    /// approximate substitutions), produced when the server shed the
    /// query, a deadline expired, or a clip is quarantined. The reason
    /// rides in the canonical bytes, so degraded answers are
    /// distinguishable from exact ones by construction.
    Approximate {
        /// Why the answer is degraded (shed / deadline / quarantine).
        reason: String,
        /// Per-clip rows, possibly mixing exact and estimated values.
        rows: Vec<Vec<f32>>,
        /// Frames the server could still select (may be incomplete).
        frames: Vec<FrameRef>,
    },
}

impl Answer {
    /// Canonical bytes — the unit of the byte-identity contract.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("answers serialize")
            .into_bytes()
    }

    /// Decode canonical bytes.
    pub fn from_bytes(bytes: &[u8]) -> Answer {
        let text = std::str::from_utf8(bytes).expect("canonical answer bytes are utf-8");
        serde_json::from_str(text).expect("canonical answer bytes decode")
    }

    /// Whether this is a degraded (approximate) answer.
    pub fn is_approximate(&self) -> bool {
        matches!(self, Answer::Approximate { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_query::FrameQueryKind;

    #[test]
    fn canonical_key_distinguishes_queries() {
        let a = ServeQuery::Aggregate(AggregateQuery::AvgVisible);
        let b = ServeQuery::Aggregate(AggregateQuery::TrafficVolume);
        let c = ServeQuery::FrameLimit(FrameLimitQuery {
            kind: FrameQueryKind::Count,
            n: 2,
            limit: 10,
            min_separation_s: 5.0,
        });
        assert_ne!(a.canonical_key(), b.canonical_key());
        assert_ne!(a.canonical_key(), c.canonical_key());
        assert_eq!(a.canonical_key(), a.clone().canonical_key());
    }

    #[test]
    fn answer_bytes_roundtrip() {
        let ans = Answer::PerClip(vec![vec![1.5, 2.0], vec![0.0]]);
        let bytes = ans.to_bytes();
        assert_eq!(Answer::from_bytes(&bytes), ans);
        let frames = Answer::Frames(vec![FrameRef { clip: 3, frame: 17 }]);
        assert_eq!(Answer::from_bytes(&frames.to_bytes()), frames);
    }

    #[test]
    fn approximate_answers_are_self_marking() {
        let meta = ClipMeta {
            id: 0,
            num_frames: 600,
            fps: 10.0,
            width: 640.0,
            height: 352.0,
            num_tracks: 12,
            max_concurrent_tracks: 4,
            fingerprint: 0,
            cell_size: 13.0,
            occupied_cells: vec![],
            source: None,
        };
        let q = ServeQuery::Aggregate(AggregateQuery::PeakOccupancy);
        let exact = Answer::PerClip(vec![vec![4.0]]);
        let approx = q.approximate_answer(std::slice::from_ref(&meta), "shed");
        assert!(approx.is_approximate());
        assert!(!exact.is_approximate());
        assert_ne!(exact.to_bytes(), approx.to_bytes());
        let decoded = Answer::from_bytes(&approx.to_bytes());
        match decoded {
            Answer::Approximate { reason, rows, .. } => {
                assert_eq!(reason, "shed");
                assert_eq!(rows, vec![vec![4.0]], "peak occupancy = catalog summary");
            }
            other => panic!("expected approximate, got {other:?}"),
        }
        // volume estimate: 12 tracks over 1 minute of video
        match q_volume().approximate_answer(std::slice::from_ref(&meta), "x") {
            Answer::Approximate { rows, .. } => assert!((rows[0][0] - 12.0).abs() < 1e-4),
            other => panic!("expected approximate, got {other:?}"),
        }
    }

    fn q_volume() -> ServeQuery {
        ServeQuery::Aggregate(AggregateQuery::TrafficVolume)
    }
}
