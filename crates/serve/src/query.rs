//! The serving tier's query and answer types.
//!
//! A [`ServeQuery`] wraps the existing `otif-query` operators; its
//! canonical form (stable serde serialization) is the cache key, and an
//! [`Answer`]'s canonical bytes are what the determinism contract is
//! stated over: byte-identical at any thread count, cache state, and
//! pruning setting.

use otif_query::{AggregateQuery, FrameLimitQuery, FrameRef, TrackQuery};
use serde::{Deserialize, Serialize};

/// A query the serving tier answers from stored tracks alone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServeQuery {
    /// Per-clip aggregate (§3's example queries 3–4).
    Aggregate(AggregateQuery),
    /// Per-clip object-track query (§4.1).
    Track(TrackQuery),
    /// Cross-clip frame-level limit query (§4.2).
    FrameLimit(FrameLimitQuery),
}

impl ServeQuery {
    /// Canonical cache-key text: the stable serde serialization. Two
    /// queries with equal canonical keys are the same query.
    pub fn canonical_key(&self) -> String {
        serde_json::to_string(self).expect("queries serialize")
    }

    /// Short human-readable label for logs and bench tables.
    pub fn label(&self) -> String {
        match self {
            ServeQuery::Aggregate(a) => format!("agg:{a:?}"),
            ServeQuery::Track(TrackQuery::Count) => "track:count".into(),
            ServeQuery::Track(TrackQuery::HardBraking { decel }) => {
                format!("track:braking>{decel}")
            }
            ServeQuery::Track(TrackQuery::PathBreakdown { patterns, .. }) => {
                format!("track:breakdown[{}]", patterns.len())
            }
            ServeQuery::FrameLimit(f) => {
                let kind = match &f.kind {
                    otif_query::FrameQueryKind::Count => "count".to_string(),
                    otif_query::FrameQueryKind::Region(_) => "region".to_string(),
                    otif_query::FrameQueryKind::HotSpot { radius } => format!("hotspot r={radius}"),
                };
                format!("frames:{kind} n={} limit={}", f.n, f.limit)
            }
        }
    }
}

/// A serving answer in canonical form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Answer {
    /// One row per ingested clip, in clip-id order (aggregate and track
    /// queries; row layout is the operator's count vector).
    PerClip(Vec<Vec<f32>>),
    /// Selected frames of a frame-limit query; `FrameRef::clip` is the
    /// store clip id.
    Frames(Vec<FrameRef>),
}

impl Answer {
    /// Canonical bytes — the unit of the byte-identity contract.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("answers serialize")
            .into_bytes()
    }

    /// Decode canonical bytes.
    pub fn from_bytes(bytes: &[u8]) -> Answer {
        let text = std::str::from_utf8(bytes).expect("canonical answer bytes are utf-8");
        serde_json::from_str(text).expect("canonical answer bytes decode")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_query::FrameQueryKind;

    #[test]
    fn canonical_key_distinguishes_queries() {
        let a = ServeQuery::Aggregate(AggregateQuery::AvgVisible);
        let b = ServeQuery::Aggregate(AggregateQuery::TrafficVolume);
        let c = ServeQuery::FrameLimit(FrameLimitQuery {
            kind: FrameQueryKind::Count,
            n: 2,
            limit: 10,
            min_separation_s: 5.0,
        });
        assert_ne!(a.canonical_key(), b.canonical_key());
        assert_ne!(a.canonical_key(), c.canonical_key());
        assert_eq!(a.canonical_key(), a.clone().canonical_key());
    }

    #[test]
    fn answer_bytes_roundtrip() {
        let ans = Answer::PerClip(vec![vec![1.5, 2.0], vec![0.0]]);
        let bytes = ans.to_bytes();
        assert_eq!(Answer::from_bytes(&bytes), ans);
        let frames = Answer::Frames(vec![FrameRef { clip: 3, frame: 17 }]);
        assert_eq!(Answer::from_bytes(&frames.to_bytes()), frames);
    }
}
