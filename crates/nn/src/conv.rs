//! Strided 2-D convolution with explicit backprop.
//!
//! The segmentation proxy model (§3.3) is "a five-layer encoder followed by
//! a two-layer decoder" of strided convolutions producing one score per
//! 32×32 input cell. This module provides the conv layer that network is
//! assembled from.
//!
//! The forward/inference pass dispatches through [`crate::kernels`]: an
//! im2col + cache-blocked GEMM path for real problem sizes, the plain
//! nested loops for tiny shapes (and as the reference oracle). Both
//! paths are bit-identical — see the kernels module docs — so path
//! selection never perturbs training. Backprop keeps the explicit loops:
//! it runs only during the one-time training phase, not in the
//! per-frame hot path.

use crate::kernels::{self, ConvShape, KernelPath};
use crate::tensor::BatchTensor3;
use crate::{Activation, OptimKind, Param, Tensor3, XavierInit};
use serde::{Deserialize, Serialize};

/// A 2-D convolution layer with square kernel, stride and zero padding,
/// followed by an activation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Square kernel side.
    pub ksize: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on each border.
    pub pad: usize,
    /// Activation applied to the outputs.
    pub act: Activation,
    /// Kernel weights, laid out `[out_ch][in_ch][ky][kx]`.
    pub weight: Param,
    /// Per-output-channel biases.
    pub bias: Param,
    last_input: Option<Tensor3>,
    last_output: Option<Tensor3>,
}

impl Conv2d {
    /// Build a layer with Xavier-initialized kernels.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        ksize: usize,
        stride: usize,
        pad: usize,
        act: Activation,
        init: &mut XavierInit,
    ) -> Self {
        let fan_in = in_ch * ksize * ksize;
        let fan_out = out_ch * ksize * ksize;
        Conv2d {
            in_ch,
            out_ch,
            ksize,
            stride,
            pad,
            act,
            weight: Param::new(init.sample(out_ch * in_ch * ksize * ksize, fan_in, fan_out)),
            bias: Param::zeros(out_ch),
            last_input: None,
            last_output: None,
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        self.shape().out_size(h, w)
    }

    /// The static kernel-layer shape of this layer.
    pub fn shape(&self) -> ConvShape {
        ConvShape {
            in_ch: self.in_ch,
            out_ch: self.out_ch,
            ksize: self.ksize,
            stride: self.stride,
            pad: self.pad,
        }
    }

    #[inline]
    fn widx(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> usize {
        ((oc * self.in_ch + ic) * self.ksize + ky) * self.ksize + kx
    }

    fn conv_forward_into(&self, x: &Tensor3, out: &mut Tensor3, path: KernelPath) {
        assert_eq!(x.c, self.in_ch);
        let (oh, ow) = self.out_size(x.h, x.w);
        out.reset(self.out_ch, oh, ow);
        kernels::conv2d(&self.shape(), &self.weight.w, &self.bias.w, x, out, path);
        let act = self.act;
        out.map_inplace(|v| act.apply(v));
    }

    fn conv_forward(&self, x: &Tensor3) -> Tensor3 {
        let mut out = Tensor3::zeros(0, 0, 0);
        self.conv_forward_into(x, &mut out, KernelPath::Auto);
        out
    }

    /// Forward pass caching tensors for `backward`.
    pub fn forward(&mut self, x: &Tensor3) -> Tensor3 {
        let out = self.conv_forward(x);
        self.last_input = Some(x.clone());
        self.last_output = Some(out.clone());
        out
    }

    /// Inference-only forward (no caches touched).
    pub fn infer(&self, x: &Tensor3) -> Tensor3 {
        self.conv_forward(x)
    }

    /// Inference into a caller-owned output tensor (resized in place):
    /// together with the scratch-pooled im2col matrix this performs zero
    /// heap allocations after warm-up.
    pub fn infer_into(&self, x: &Tensor3, out: &mut Tensor3) {
        self.conv_forward_into(x, out, KernelPath::Auto);
    }

    /// Inference through a forced kernel path (bench/oracle use).
    pub fn infer_path(&self, x: &Tensor3, path: KernelPath) -> Tensor3 {
        let mut out = Tensor3::zeros(0, 0, 0);
        self.conv_forward_into(x, &mut out, path);
        out
    }

    /// [`Self::infer_path`] into a caller-owned output tensor.
    pub fn infer_path_into(&self, x: &Tensor3, out: &mut Tensor3, path: KernelPath) {
        self.conv_forward_into(x, out, path);
    }

    /// Batched inference over `x.n` same-shape items: one im2col + one
    /// GEMM for the whole batch (see [`kernels::conv2d_gemm_batched`]),
    /// bit-identical to `x.n` [`Self::infer_into`] calls. `out` is
    /// resized in place; the path dispatches per-item problem size.
    pub fn infer_batched_into(&self, x: &BatchTensor3, out: &mut BatchTensor3) {
        self.infer_batched_path_into(x, out, KernelPath::Auto);
    }

    /// [`Self::infer_batched_into`] through a forced kernel path.
    pub fn infer_batched_path_into(
        &self,
        x: &BatchTensor3,
        out: &mut BatchTensor3,
        path: KernelPath,
    ) {
        assert_eq!(x.c, self.in_ch);
        let (oh, ow) = self.out_size(x.h, x.w);
        out.reset(x.n, self.out_ch, oh, ow);
        kernels::conv2d_batched(&self.shape(), &self.weight.w, &self.bias.w, x, out, path);
        let act = self.act;
        out.data.iter_mut().for_each(|v| *v = act.apply(*v));
    }

    /// Backward pass: accumulate kernel/bias gradients, return dL/dx.
    pub fn backward(&mut self, grad_out: &Tensor3) -> Tensor3 {
        let x = self.last_input.as_ref().expect("forward before backward");
        let y = self.last_output.as_ref().unwrap();
        assert_eq!(grad_out.c, self.out_ch);
        let mut grad_in = Tensor3::zeros(x.c, x.h, x.w);
        for oc in 0..self.out_ch {
            for oy in 0..grad_out.h {
                for ox in 0..grad_out.w {
                    let d = grad_out.get(oc, oy, ox) * self.act.grad_from_output(y.get(oc, oy, ox));
                    if d == 0.0 {
                        continue;
                    }
                    self.bias.g[oc] += d;
                    let iy0 = (oy * self.stride) as isize - self.pad as isize;
                    let ix0 = (ox * self.stride) as isize - self.pad as isize;
                    for ic in 0..self.in_ch {
                        for ky in 0..self.ksize {
                            let iy = iy0 + ky as isize;
                            if iy < 0 || iy >= x.h as isize {
                                continue;
                            }
                            for kx in 0..self.ksize {
                                let ix = ix0 + kx as isize;
                                if ix < 0 || ix >= x.w as isize {
                                    continue;
                                }
                                let wi = self.widx(oc, ic, ky, kx);
                                self.weight.g[wi] += d * x.get(ic, iy as usize, ix as usize);
                                grad_in.add_at(ic, iy as usize, ix as usize, d * self.weight.w[wi]);
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    /// Apply one optimizer step to kernels and biases.
    pub fn step(&mut self, lr: f32, kind: OptimKind) {
        self.weight.step(lr, kind);
        self.bias.step(lr, kind);
    }

    /// Clear accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.weight.zero_grad();
        self.bias.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_size_strided() {
        let mut init = XavierInit::new(0);
        let c = Conv2d::new(1, 1, 3, 2, 1, Activation::Linear, &mut init);
        // (h + 2p - k)/s + 1 = (8 + 2 - 3)/2 + 1 = 4
        assert_eq!(c.out_size(8, 8), (4, 4));
        assert_eq!(c.out_size(16, 8), (8, 4));
    }

    #[test]
    fn identity_kernel_passes_through() {
        let mut init = XavierInit::new(0);
        let mut c = Conv2d::new(1, 1, 1, 1, 0, Activation::Linear, &mut init);
        c.weight.w = vec![1.0];
        c.bias.w = vec![0.0];
        let x = Tensor3::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x);
        assert_eq!(y.data, x.data);
    }

    #[test]
    fn box_filter_sums_window() {
        let mut init = XavierInit::new(0);
        let mut c = Conv2d::new(1, 1, 2, 2, 0, Activation::Linear, &mut init);
        c.weight.w = vec![1.0; 4];
        c.bias.w = vec![0.0];
        let x = Tensor3::from_vec(1, 2, 4, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let y = c.forward(&x);
        assert_eq!(y.h, 1);
        assert_eq!(y.w, 2);
        assert_eq!(y.data, vec![14.0, 22.0]); // 1+2+5+6, 3+4+7+8
    }

    #[test]
    fn forced_paths_agree_at_proxy_shape() {
        // The first proxy encoder layer at the half-resolution input:
        // big enough that Auto picks GEMM.
        let mut init = XavierInit::new(5);
        let c = Conv2d::new(1, 3, 3, 2, 1, Activation::LeakyRelu, &mut init);
        let x = Tensor3::from_vec(
            1,
            96,
            192,
            (0..96 * 192)
                .map(|i| ((i * 37 % 97) as f32) / 97.0)
                .collect(),
        );
        let naive = c.infer_path(&x, KernelPath::Naive);
        let gemm = c.infer_path(&x, KernelPath::Gemm);
        assert_eq!(naive.data, gemm.data);
        assert_eq!(c.infer(&x).data, gemm.data, "Auto must match the oracle");
        let mut reused = Tensor3::zeros(0, 0, 0);
        c.infer_into(&x, &mut reused);
        assert_eq!(reused.data, gemm.data);
    }

    #[test]
    fn gradient_check_small_conv() {
        let mut init = XavierInit::new(3);
        let mut c = Conv2d::new(2, 2, 3, 2, 1, Activation::Tanh, &mut init);
        let x = Tensor3::from_vec(
            2,
            4,
            4,
            (0..32)
                .map(|i| ((i * 7 % 13) as f32 - 6.0) / 10.0)
                .collect(),
        );
        let y = c.forward(&x);
        // loss = 0.5 * sum(y^2); dL/dy = y
        let gy = Tensor3::from_vec(y.c, y.h, y.w, y.data.clone());
        c.backward(&gy);
        let analytic = c.weight.g.clone();
        let loss =
            |c: &Conv2d, x: &Tensor3| -> f32 { c.infer(x).data.iter().map(|v| 0.5 * v * v).sum() };
        let eps = 1e-3;
        for i in (0..c.weight.w.len()).step_by(5) {
            let orig = c.weight.w[i];
            c.weight.w[i] = orig + eps;
            let lp = loss(&c, &x);
            c.weight.w[i] = orig - eps;
            let lm = loss(&c, &x);
            c.weight.w[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic[i] - numeric).abs() < 2e-2,
                "w[{i}]: analytic {} numeric {}",
                analytic[i],
                numeric
            );
        }
    }

    #[test]
    fn input_gradient_check() {
        let mut init = XavierInit::new(4);
        let mut c = Conv2d::new(1, 2, 3, 1, 1, Activation::Sigmoid, &mut init);
        let x = Tensor3::from_vec(1, 3, 3, (0..9).map(|i| i as f32 / 10.0).collect());
        let y = c.forward(&x);
        let gy = Tensor3::from_vec(y.c, y.h, y.w, vec![1.0; y.len()]);
        let gx = c.backward(&gy);
        let loss = |c: &Conv2d, x: &Tensor3| -> f32 { c.infer(x).data.iter().sum() };
        let eps = 1e-3;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let mut xm = x.clone();
            xm.data[i] -= eps;
            let numeric = (loss(&c, &xp) - loss(&c, &xm)) / (2.0 * eps);
            assert!(
                (gx.data[i] - numeric).abs() < 1e-2,
                "x[{i}]: analytic {} numeric {}",
                gx.data[i],
                numeric
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_segmentation_toy() {
        // Teach a 2-layer conv net to mark bright cells: a miniature version
        // of the segmentation proxy task.
        let mut init = XavierInit::new(11);
        let mut l1 = Conv2d::new(1, 4, 3, 2, 1, Activation::Relu, &mut init);
        let mut l2 = Conv2d::new(4, 1, 3, 2, 1, Activation::Linear, &mut init);
        // 8x8 input -> 4x4 -> 2x2 logits
        let make_example = |on: [bool; 4]| -> (Tensor3, Vec<f32>) {
            let mut x = Tensor3::zeros(1, 8, 8);
            for (q, &o) in on.iter().enumerate() {
                if o {
                    let (qy, qx) = (q / 2 * 4, q % 2 * 4);
                    for y in 0..4 {
                        for x_ in 0..4 {
                            x.set(0, qy + y, qx + x_, 1.0);
                        }
                    }
                }
            }
            let t = on.iter().map(|&o| if o { 1.0 } else { 0.0 }).collect();
            (x, t)
        };
        let examples: Vec<_> = (0..16u32)
            .map(|m| make_example([m & 1 != 0, m & 2 != 0, m & 4 != 0, m & 8 != 0]))
            .collect();
        let loss_of = |l1: &Conv2d, l2: &Conv2d| -> f32 {
            examples
                .iter()
                .map(|(x, t)| crate::bce_with_logits(&l2.infer(&l1.infer(x)).data, t))
                .sum::<f32>()
                / examples.len() as f32
        };
        let before = loss_of(&l1, &l2);
        for _ in 0..60 {
            for (x, t) in &examples {
                let h = l1.forward(x);
                let logits = l2.forward(&h);
                let g = crate::bce_with_logits_grad(&logits.data, t);
                let gt = Tensor3::from_vec(logits.c, logits.h, logits.w, g);
                let gh = l2.backward(&gt);
                l1.backward(&gh);
            }
            l1.step(0.05, OptimKind::Adam);
            l2.step(0.05, OptimKind::Adam);
        }
        let after = loss_of(&l1, &l2);
        assert!(
            after < before * 0.3,
            "loss did not drop: before {before}, after {after}"
        );
    }
}
