//! Loss functions.

/// Numerically stable logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Mean squared error over a prediction/target pair.
pub fn mse(pred: &[f32], target: &[f32]) -> f32 {
    assert_eq!(pred.len(), target.len());
    let n = pred.len().max(1) as f32;
    pred.iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f32>()
        / n
}

/// Gradient of [`mse`] w.r.t. the predictions.
pub fn mse_grad(pred: &[f32], target: &[f32]) -> Vec<f32> {
    assert_eq!(pred.len(), target.len());
    let n = pred.len().max(1) as f32;
    pred.iter()
        .zip(target)
        .map(|(p, t)| 2.0 * (p - t) / n)
        .collect()
}

/// Binary cross-entropy on raw logits (numerically stable form), averaged
/// over elements. `target` entries must be in `[0, 1]`.
pub fn bce_with_logits(logits: &[f32], target: &[f32]) -> f32 {
    assert_eq!(logits.len(), target.len());
    let n = logits.len().max(1) as f32;
    logits
        .iter()
        .zip(target)
        .map(|(&z, &t)| {
            // max(z,0) - z*t + ln(1 + e^{-|z|})
            z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln()
        })
        .sum::<f32>()
        / n
}

/// Gradient of [`bce_with_logits`] w.r.t. the logits: `(σ(z) − t) / n`.
pub fn bce_with_logits_grad(logits: &[f32], target: &[f32]) -> Vec<f32> {
    assert_eq!(logits.len(), target.len());
    let n = logits.len().max(1) as f32;
    logits
        .iter()
        .zip(target)
        .map(|(&z, &t)| (sigmoid(z) - t) / n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!((sigmoid(5.0) + sigmoid(-5.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(-100.0) >= 0.0);
    }

    #[test]
    fn mse_zero_for_perfect_prediction() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((mse(&[0.0, 0.0], &[1.0, 1.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mse_grad_numeric_check() {
        let pred = [0.3, -0.5, 0.7];
        let target = [0.0, 0.0, 1.0];
        let g = mse_grad(&pred, &target);
        let eps = 1e-3;
        for i in 0..pred.len() {
            let mut pp = pred;
            pp[i] += eps;
            let mut pm = pred;
            pm[i] -= eps;
            let numeric = (mse(&pp, &target) - mse(&pm, &target)) / (2.0 * eps);
            assert!((g[i] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_matches_naive_formula_for_moderate_logits() {
        let z = [0.5, -1.2, 2.0];
        let t = [1.0, 0.0, 1.0];
        let naive: f32 = z
            .iter()
            .zip(&t)
            .map(|(&z, &t)| {
                let p = sigmoid(z);
                -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
            })
            .sum::<f32>()
            / 3.0;
        assert!((bce_with_logits(&z, &t) - naive).abs() < 1e-5);
    }

    #[test]
    fn bce_stable_for_extreme_logits() {
        let v = bce_with_logits(&[1000.0, -1000.0], &[1.0, 0.0]);
        assert!(v.is_finite());
        assert!(v < 1e-3);
        let bad = bce_with_logits(&[1000.0, -1000.0], &[0.0, 1.0]);
        assert!(bad.is_finite());
        assert!(bad > 100.0);
    }

    #[test]
    fn bce_grad_numeric_check() {
        let z = [0.4, -0.9];
        let t = [1.0, 0.3];
        let g = bce_with_logits_grad(&z, &t);
        let eps = 1e-3;
        for i in 0..z.len() {
            let mut zp = z;
            zp[i] += eps;
            let mut zm = z;
            zm[i] -= eps;
            let numeric = (bce_with_logits(&zp, &t) - bce_with_logits(&zm, &t)) / (2.0 * eps);
            assert!((g[i] - numeric).abs() < 1e-3, "i={i}");
        }
    }
}
