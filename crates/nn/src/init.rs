//! Deterministic weight initialization.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Xavier/Glorot-style uniform initializer driven by a seeded RNG so that
/// model training is reproducible across runs and platforms.
pub struct XavierInit {
    rng: ChaCha8Rng,
}

impl XavierInit {
    /// Create an initializer from a seed.
    pub fn new(seed: u64) -> Self {
        XavierInit {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Sample `n` weights for a layer with the given fan-in/fan-out.
    pub fn sample(&mut self, n: usize, fan_in: usize, fan_out: usize) -> Vec<f32> {
        let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
        (0..n).map(|_| self.rng.gen_range(-bound..bound)).collect()
    }

    /// Uniform sample in `[-bound, bound]`.
    pub fn uniform(&mut self, n: usize, bound: f32) -> Vec<f32> {
        (0..n).map(|_| self.rng.gen_range(-bound..bound)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let a = XavierInit::new(1).sample(16, 4, 4);
        let b = XavierInit::new(1).sample(16, 4, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_weights() {
        let a = XavierInit::new(1).sample(16, 4, 4);
        let b = XavierInit::new(2).sample(16, 4, 4);
        assert_ne!(a, b);
    }

    #[test]
    fn bounds_respected() {
        let ws = XavierInit::new(3).sample(1000, 8, 8);
        let bound = (6.0f32 / 16.0).sqrt();
        assert!(ws.iter().all(|w| w.abs() <= bound));
        // and not degenerate
        assert!(ws.iter().any(|w| w.abs() > bound * 0.5));
    }
}
