//! Fully-connected layers and a small MLP wrapper.
//!
//! Forward/inference matvecs go through [`crate::kernels::matvec_acc`]
//! (bounds-check-free, bit-identical to the plain loops). `forward`
//! computes into layer-owned buffers reused across calls, and
//! `infer_into` + the thread-local scratch pool make the inference path
//! allocation-free after warm-up — these run per candidate detection in
//! the recurrent tracker's scoring loop, the per-frame hot path.

use crate::kernels::{self, matvec_acc};
use crate::{OptimKind, Param, XavierInit};
use serde::{Deserialize, Serialize};

/// Activation function applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity.
    Linear,
    /// `max(x, 0)`.
    Relu,
    /// Leaky ReLU with slope 0.1 on the negative side — avoids dead
    /// networks in small convolutional models.
    LeakyRelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Apply the activation to a scalar.
    pub fn apply(&self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.1 * x
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the activation's *output* `y`.
    pub fn grad_from_output(&self, y: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.1
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }
}

/// A dense layer `y = act(W x + b)` with explicit backprop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Activation applied to the outputs.
    pub act: Activation,
    /// Weights, `out_dim x in_dim` row-major.
    pub weight: Param, // out_dim × in_dim, row-major
    /// Per-output biases.
    pub bias: Param, // out_dim
    // caches from the last forward pass
    last_input: Vec<f32>,
    last_output: Vec<f32>,
}

impl Dense {
    /// Build a layer with Xavier-initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, init: &mut XavierInit) -> Self {
        Dense {
            in_dim,
            out_dim,
            act,
            weight: Param::new(init.sample(in_dim * out_dim, in_dim, out_dim)),
            bias: Param::zeros(out_dim),
            last_input: Vec::new(),
            last_output: Vec::new(),
        }
    }

    /// Forward pass, caching input and output for `backward`.
    ///
    /// The caches are layer-owned buffers reused across calls; the only
    /// per-call allocation is the returned `Vec` (training-path only).
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        self.forward_cached(x);
        self.last_output.clone()
    }

    /// Forward pass that leaves the result in `self.last_output` without
    /// returning (and so without allocating). [`Mlp::forward`] chains
    /// layers through these buffers.
    pub fn forward_cached(&mut self, x: &[f32]) {
        debug_assert_eq!(x.len(), self.in_dim);
        self.last_input.clear();
        self.last_input.extend_from_slice(x);
        // Split borrows: compute into the layer-owned output buffer.
        let y = &mut self.last_output;
        y.clear();
        y.extend_from_slice(&self.bias.w);
        matvec_acc(&self.weight.w, x, y);
        let act = self.act;
        y.iter_mut().for_each(|v| *v = act.apply(*v));
    }

    /// Inference-only forward that does not touch the caches.
    pub fn infer(&self, x: &[f32]) -> Vec<f32> {
        let mut y = Vec::new();
        self.infer_into(x, &mut y);
        y
    }

    /// Inference into a caller-owned buffer (cleared and refilled):
    /// no heap allocation once the buffer has capacity `out_dim`.
    pub fn infer_into(&self, x: &[f32], y: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), self.in_dim);
        y.clear();
        y.extend_from_slice(&self.bias.w);
        matvec_acc(&self.weight.w, x, y);
        let act = self.act;
        y.iter_mut().for_each(|v| *v = act.apply(*v));
    }

    /// Batched inference: `xs` holds `batch` consecutive rows of
    /// `in_dim`; `ys` is refilled with `batch` rows of `out_dim`.
    ///
    /// Folds the batch into the GEMM's M dimension — `Y = act(X·Wᵀ + b)`
    /// with the (scratch-pooled) transposed weight streamed once per
    /// batch rather than once per row. Each output element accumulates
    /// its `in_dim` terms in the same strictly increasing order as
    /// [`Self::infer_into`]'s matvec, so the result is bit-identical to
    /// `batch` looped calls.
    pub fn infer_batched_into(&self, xs: &[f32], batch: usize, ys: &mut Vec<f32>) {
        assert_eq!(xs.len(), batch * self.in_dim, "batched dense input shape");
        ys.clear();
        for _ in 0..batch {
            ys.extend_from_slice(&self.bias.w);
        }
        let mut wt = kernels::take_buf(self.in_dim * self.out_dim);
        for r in 0..self.out_dim {
            for p in 0..self.in_dim {
                wt[p * self.out_dim + r] = self.weight.w[r * self.in_dim + p];
            }
        }
        kernels::matmul_blocked(xs, &wt, ys, batch, self.in_dim, self.out_dim);
        kernels::put_buf(wt);
        let act = self.act;
        ys.iter_mut().for_each(|v| *v = act.apply(*v));
    }

    /// Backward pass: accumulate parameter gradients, return dL/dx.
    pub fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        debug_assert_eq!(grad_out.len(), self.out_dim);
        let mut grad_in = vec![0.0; self.in_dim];
        for (o, &go) in grad_out.iter().enumerate() {
            let d = go * self.act.grad_from_output(self.last_output[o]);
            self.bias.g[o] += d;
            let row_w = &self.weight.w[o * self.in_dim..(o + 1) * self.in_dim];
            let row_g = &mut self.weight.g[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                row_g[i] += d * self.last_input[i];
                grad_in[i] += d * row_w[i];
            }
        }
        grad_in
    }

    /// Apply one optimizer step to weights and biases.
    pub fn step(&mut self, lr: f32, kind: OptimKind) {
        self.weight.step(lr, kind);
        self.bias.step(lr, kind);
    }

    /// Clear accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.weight.zero_grad();
        self.bias.zero_grad();
    }
}

/// A stack of dense layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    /// Layers applied in order.
    pub layers: Vec<Dense>,
}

impl Mlp {
    /// Build an MLP with the given layer sizes; hidden layers use `hidden`,
    /// the output layer uses `out_act`.
    pub fn new(
        sizes: &[usize],
        hidden: Activation,
        out_act: Activation,
        init: &mut XavierInit,
    ) -> Self {
        assert!(sizes.len() >= 2);
        let mut layers = Vec::new();
        for i in 0..sizes.len() - 1 {
            let act = if i == sizes.len() - 2 {
                out_act
            } else {
                hidden
            };
            layers.push(Dense::new(sizes[i], sizes[i + 1], act, init));
        }
        Mlp { layers }
    }

    /// Forward pass through all layers (training: caches activations).
    ///
    /// Layers chain through their own cached output buffers, so the only
    /// per-call allocation is the returned `Vec`.
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        for i in 0..self.layers.len() {
            let (done, rest) = self.layers.split_at_mut(i);
            let input: &[f32] = match done.last() {
                None => x,
                Some(prev) => &prev.last_output,
            };
            rest[0].forward_cached(input);
        }
        self.layers
            .last()
            .map(|l| l.last_output.clone())
            .unwrap_or_default()
    }

    /// Inference-only forward pass.
    pub fn infer(&self, x: &[f32]) -> Vec<f32> {
        let mut y = Vec::new();
        self.infer_into(x, &mut y);
        y
    }

    /// Inference into a caller-owned buffer. Intermediate activations
    /// live in the thread-local scratch pool, so the whole pass performs
    /// zero heap allocations after warm-up (given `out` has capacity).
    pub fn infer_into(&self, x: &[f32], out: &mut Vec<f32>) {
        match self.layers.as_slice() {
            [] => {
                out.clear();
                out.extend_from_slice(x);
            }
            [only] => only.infer_into(x, out),
            [first, rest @ ..] => {
                let mut a = kernels::take_buf(0);
                let mut b = kernels::take_buf(0);
                first.infer_into(x, &mut a);
                for (i, l) in rest.iter().enumerate() {
                    if i == rest.len() - 1 {
                        l.infer_into(&a, out);
                    } else {
                        l.infer_into(&a, &mut b);
                        std::mem::swap(&mut a, &mut b);
                    }
                }
                kernels::put_buf(a);
                kernels::put_buf(b);
            }
        }
    }

    /// Batched inference: `xs` holds `batch` consecutive input rows;
    /// `out` is refilled with `batch` output rows. Bit-identical to
    /// `batch` looped [`Self::infer_into`] calls (each layer's batched
    /// matmul accumulates in the per-row order — see
    /// [`Dense::infer_batched_into`]); intermediate activations live in
    /// the thread-local scratch pool.
    pub fn infer_batched_into(&self, xs: &[f32], batch: usize, out: &mut Vec<f32>) {
        match self.layers.as_slice() {
            [] => {
                out.clear();
                out.extend_from_slice(xs);
            }
            [only] => only.infer_batched_into(xs, batch, out),
            [first, rest @ ..] => {
                let mut a = kernels::take_buf(0);
                let mut b = kernels::take_buf(0);
                first.infer_batched_into(xs, batch, &mut a);
                for (i, l) in rest.iter().enumerate() {
                    if i == rest.len() - 1 {
                        l.infer_batched_into(&a, batch, out);
                    } else {
                        l.infer_batched_into(&a, batch, &mut b);
                        std::mem::swap(&mut a, &mut b);
                    }
                }
                kernels::put_buf(a);
                kernels::put_buf(b);
            }
        }
    }

    /// Backward pass through all layers; returns dL/dx.
    pub fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        let mut g = grad_out.to_vec();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    /// Apply one optimizer step to every layer.
    pub fn step(&mut self, lr: f32, kind: OptimKind) {
        for l in &mut self.layers {
            l.step(lr, kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{mse, mse_grad};

    #[test]
    fn forward_matches_manual_computation() {
        let mut init = XavierInit::new(0);
        let mut d = Dense::new(2, 1, Activation::Linear, &mut init);
        d.weight.w = vec![2.0, -1.0];
        d.bias.w = vec![0.5];
        let y = d.forward(&[3.0, 4.0]);
        assert!((y[0] - (6.0 - 4.0 + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn backward_gradient_check() {
        // Numerical gradient check on a tiny dense layer.
        let mut init = XavierInit::new(1);
        let mut d = Dense::new(3, 2, Activation::Tanh, &mut init);
        let x = [0.3, -0.7, 0.9];
        let target = [0.2, -0.4];

        let y = d.forward(&x);
        let g = mse_grad(&y, &target);
        d.backward(&g);
        let analytic = d.weight.g.clone();

        let eps = 1e-3;
        #[allow(clippy::needless_range_loop)]
        for i in 0..d.weight.w.len() {
            let orig = d.weight.w[i];
            d.weight.w[i] = orig + eps;
            let lp = mse(&d.infer(&x), &target);
            d.weight.w[i] = orig - eps;
            let lm = mse(&d.infer(&x), &target);
            d.weight.w[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic[i] - numeric).abs() < 1e-2,
                "weight {i}: analytic {} vs numeric {}",
                analytic[i],
                numeric
            );
        }
    }

    #[test]
    fn mlp_learns_xor() {
        let mut init = XavierInit::new(7);
        let mut mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Sigmoid, &mut init);
        let data: [([f32; 2], f32); 4] = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..3000 {
            for (x, t) in &data {
                let y = mlp.forward(x);
                let g = mse_grad(&y, &[*t]);
                mlp.backward(&g);
            }
            mlp.step(0.05, OptimKind::Adam);
        }
        for (x, t) in &data {
            let y = mlp.infer(x)[0];
            assert!((y - t).abs() < 0.2, "xor({x:?}) = {y}, expected {t}");
        }
    }

    #[test]
    fn activation_grads_consistent() {
        for act in [
            Activation::Linear,
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            let x = 0.37;
            let y = act.apply(x);
            let eps = 1e-3;
            let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
            assert!((act.grad_from_output(y) - numeric).abs() < 1e-2, "{act:?}");
        }
    }

    #[test]
    fn infer_equals_forward() {
        let mut init = XavierInit::new(9);
        let mut mlp = Mlp::new(&[4, 6, 2], Activation::Relu, Activation::Linear, &mut init);
        let x = [0.1, 0.2, 0.3, 0.4];
        let a = mlp.forward(&x);
        let b = mlp.infer(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn batched_infer_bit_identical_to_looped() {
        let mut init = XavierInit::new(11);
        let mlp = Mlp::new(
            &[5, 9, 4, 2],
            Activation::LeakyRelu,
            Activation::Sigmoid,
            &mut init,
        );
        for batch in [1usize, 2, 3, 7] {
            let xs: Vec<f32> = (0..batch * 5).map(|i| (i as f32 * 0.37).sin()).collect();
            let mut got = Vec::new();
            mlp.infer_batched_into(&xs, batch, &mut got);
            assert_eq!(got.len(), batch * 2);
            for i in 0..batch {
                let want = mlp.infer(&xs[i * 5..(i + 1) * 5]);
                assert_eq!(
                    &got[i * 2..(i + 1) * 2],
                    want.as_slice(),
                    "batch {batch} row {i} diverges"
                );
            }
            // single layers agree too
            let d = &mlp.layers[0];
            let mut ys = Vec::new();
            d.infer_batched_into(&xs, batch, &mut ys);
            for i in 0..batch {
                assert_eq!(&ys[i * 9..(i + 1) * 9], d.infer(&xs[i * 5..(i + 1) * 5]));
            }
        }
    }
}
