//! Fully-connected layers and a small MLP wrapper.

use crate::{OptimKind, Param, XavierInit};
use serde::{Deserialize, Serialize};

/// Activation function applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity.
    Linear,
    /// `max(x, 0)`.
    Relu,
    /// Leaky ReLU with slope 0.1 on the negative side — avoids dead
    /// networks in small convolutional models.
    LeakyRelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Apply the activation to a scalar.
    pub fn apply(&self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.1 * x
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the activation's *output* `y`.
    pub fn grad_from_output(&self, y: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.1
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }
}

/// A dense layer `y = act(W x + b)` with explicit backprop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Activation applied to the outputs.
    pub act: Activation,
    /// Weights, `out_dim x in_dim` row-major.
    pub weight: Param, // out_dim × in_dim, row-major
    /// Per-output biases.
    pub bias: Param, // out_dim
    // caches from the last forward pass
    last_input: Vec<f32>,
    last_output: Vec<f32>,
}

impl Dense {
    /// Build a layer with Xavier-initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, init: &mut XavierInit) -> Self {
        Dense {
            in_dim,
            out_dim,
            act,
            weight: Param::new(init.sample(in_dim * out_dim, in_dim, out_dim)),
            bias: Param::zeros(out_dim),
            last_input: Vec::new(),
            last_output: Vec::new(),
        }
    }

    /// Forward pass, caching input and output for `backward`.
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        debug_assert_eq!(x.len(), self.in_dim);
        let mut y = vec![0.0; self.out_dim];
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.weight.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.bias.w[o];
            for (wi, xi) in row.iter().zip(x.iter()) {
                acc += wi * xi;
            }
            *yo = self.act.apply(acc);
        }
        self.last_input = x.to_vec();
        self.last_output = y.clone();
        y
    }

    /// Inference-only forward that does not touch the caches.
    pub fn infer(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0; self.out_dim];
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.weight.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.bias.w[o];
            for (wi, xi) in row.iter().zip(x.iter()) {
                acc += wi * xi;
            }
            *yo = self.act.apply(acc);
        }
        y
    }

    /// Backward pass: accumulate parameter gradients, return dL/dx.
    pub fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        debug_assert_eq!(grad_out.len(), self.out_dim);
        let mut grad_in = vec![0.0; self.in_dim];
        for (o, &go) in grad_out.iter().enumerate() {
            let d = go * self.act.grad_from_output(self.last_output[o]);
            self.bias.g[o] += d;
            let row_w = &self.weight.w[o * self.in_dim..(o + 1) * self.in_dim];
            let row_g = &mut self.weight.g[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                row_g[i] += d * self.last_input[i];
                grad_in[i] += d * row_w[i];
            }
        }
        grad_in
    }

    /// Apply one optimizer step to weights and biases.
    pub fn step(&mut self, lr: f32, kind: OptimKind) {
        self.weight.step(lr, kind);
        self.bias.step(lr, kind);
    }

    /// Clear accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.weight.zero_grad();
        self.bias.zero_grad();
    }
}

/// A stack of dense layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    /// Layers applied in order.
    pub layers: Vec<Dense>,
}

impl Mlp {
    /// Build an MLP with the given layer sizes; hidden layers use `hidden`,
    /// the output layer uses `out_act`.
    pub fn new(
        sizes: &[usize],
        hidden: Activation,
        out_act: Activation,
        init: &mut XavierInit,
    ) -> Self {
        assert!(sizes.len() >= 2);
        let mut layers = Vec::new();
        for i in 0..sizes.len() - 1 {
            let act = if i == sizes.len() - 2 {
                out_act
            } else {
                hidden
            };
            layers.push(Dense::new(sizes[i], sizes[i + 1], act, init));
        }
        Mlp { layers }
    }

    /// Forward pass through all layers (training: caches activations).
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        let mut cur = x.to_vec();
        for l in &mut self.layers {
            cur = l.forward(&cur);
        }
        cur
    }

    /// Inference-only forward pass.
    pub fn infer(&self, x: &[f32]) -> Vec<f32> {
        let mut cur = x.to_vec();
        for l in &self.layers {
            cur = l.infer(&cur);
        }
        cur
    }

    /// Backward pass through all layers; returns dL/dx.
    pub fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        let mut g = grad_out.to_vec();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    /// Apply one optimizer step to every layer.
    pub fn step(&mut self, lr: f32, kind: OptimKind) {
        for l in &mut self.layers {
            l.step(lr, kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{mse, mse_grad};

    #[test]
    fn forward_matches_manual_computation() {
        let mut init = XavierInit::new(0);
        let mut d = Dense::new(2, 1, Activation::Linear, &mut init);
        d.weight.w = vec![2.0, -1.0];
        d.bias.w = vec![0.5];
        let y = d.forward(&[3.0, 4.0]);
        assert!((y[0] - (6.0 - 4.0 + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn backward_gradient_check() {
        // Numerical gradient check on a tiny dense layer.
        let mut init = XavierInit::new(1);
        let mut d = Dense::new(3, 2, Activation::Tanh, &mut init);
        let x = [0.3, -0.7, 0.9];
        let target = [0.2, -0.4];

        let y = d.forward(&x);
        let g = mse_grad(&y, &target);
        d.backward(&g);
        let analytic = d.weight.g.clone();

        let eps = 1e-3;
        #[allow(clippy::needless_range_loop)]
        for i in 0..d.weight.w.len() {
            let orig = d.weight.w[i];
            d.weight.w[i] = orig + eps;
            let lp = mse(&d.infer(&x), &target);
            d.weight.w[i] = orig - eps;
            let lm = mse(&d.infer(&x), &target);
            d.weight.w[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic[i] - numeric).abs() < 1e-2,
                "weight {i}: analytic {} vs numeric {}",
                analytic[i],
                numeric
            );
        }
    }

    #[test]
    fn mlp_learns_xor() {
        let mut init = XavierInit::new(7);
        let mut mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Sigmoid, &mut init);
        let data: [([f32; 2], f32); 4] = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..3000 {
            for (x, t) in &data {
                let y = mlp.forward(x);
                let g = mse_grad(&y, &[*t]);
                mlp.backward(&g);
            }
            mlp.step(0.05, OptimKind::Adam);
        }
        for (x, t) in &data {
            let y = mlp.infer(x)[0];
            assert!((y - t).abs() < 0.2, "xor({x:?}) = {y}, expected {t}");
        }
    }

    #[test]
    fn activation_grads_consistent() {
        for act in [
            Activation::Linear,
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            let x = 0.37;
            let y = act.apply(x);
            let eps = 1e-3;
            let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
            assert!((act.grad_from_output(y) - numeric).abs() < 1e-2, "{act:?}");
        }
    }

    #[test]
    fn infer_equals_forward() {
        let mut init = XavierInit::new(9);
        let mut mlp = Mlp::new(&[4, 6, 2], Activation::Relu, Activation::Linear, &mut init);
        let x = [0.1, 0.2, 0.3, 0.4];
        let a = mlp.forward(&x);
        let b = mlp.infer(&x);
        assert_eq!(a, b);
    }
}
