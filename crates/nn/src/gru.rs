//! A GRU cell with backpropagation through time.
//!
//! The recurrent tracking model (§3.4) summarizes a track prefix — a
//! sequence of detection-level feature vectors — into a track-level feature
//! vector. A GRU is a standard choice; the paper cites Bilinear-LSTM-style
//! recurrent trackers.

use crate::kernels::{self, matvec_acc};
use crate::{OptimKind, Param, XavierInit};
use serde::{Deserialize, Serialize};

fn sigmoid(x: f32) -> f32 {
    crate::loss::sigmoid(x)
}

/// Per-timestep cache used by BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    z: Vec<f32>,
    r: Vec<f32>,
    hcand: Vec<f32>,
}

/// Gated recurrent unit:
///
/// ```text
/// z = σ(Wz x + Uz h + bz)        (update gate)
/// r = σ(Wr x + Ur h + br)        (reset gate)
/// ĥ = tanh(Wh x + Uh (r ⊙ h) + bh)
/// h' = (1 − z) ⊙ h + z ⊙ ĥ
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruCell {
    /// Input feature dimension.
    pub in_dim: usize,
    /// Hidden-state width.
    pub hidden: usize,
    /// Input kernels `[Wz; Wr; Wh]`, each `hidden × in_dim`.
    pub w: Param,
    /// Recurrent kernels `[Uz; Ur; Uh]`, each `hidden × hidden`.
    pub u: Param,
    /// Biases `[bz; br; bh]`.
    pub b: Param,
    #[serde(skip)]
    caches: Vec<StepCache>,
}

impl GruCell {
    /// Build a cell with Xavier-initialized kernels.
    pub fn new(in_dim: usize, hidden: usize, init: &mut XavierInit) -> Self {
        GruCell {
            in_dim,
            hidden,
            w: Param::new(init.sample(3 * hidden * in_dim, in_dim, hidden)),
            u: Param::new(init.sample(3 * hidden * hidden, hidden, hidden)),
            b: Param::zeros(3 * hidden),
            caches: Vec::new(),
        }
    }

    /// The all-zero initial hidden state.
    pub fn zero_state(&self) -> Vec<f32> {
        vec![0.0; self.hidden]
    }

    /// `out[o] = b[o] + Σ_i W[o][i]·x[i] + Σ_j U[o][j]·h[j]` for one gate,
    /// written into a caller-owned buffer (cleared and refilled). The
    /// two fused [`matvec_acc`] calls keep each element's accumulation
    /// order identical to the historical per-row loop (bias, then `W x`
    /// in increasing `i`, then `U h` in increasing `j`).
    fn gate_matvec_into(&self, gate: usize, x: &[f32], h: &[f32], out: &mut Vec<f32>) {
        let hd = self.hidden;
        let w = &self.w.w[gate * hd * self.in_dim..(gate + 1) * hd * self.in_dim];
        let u = &self.u.w[gate * hd * hd..(gate + 1) * hd * hd];
        let b = &self.b.w[gate * hd..(gate + 1) * hd];
        out.clear();
        out.extend_from_slice(b);
        matvec_acc(w, x, out);
        matvec_acc(u, h, out);
    }

    /// One recurrent step during training (caches for BPTT).
    pub fn forward(&mut self, x: &[f32], h_prev: &[f32]) -> Vec<f32> {
        self.step_impl(x, h_prev, true)
    }

    /// One recurrent step during inference (no cache).
    pub fn infer(&self, x: &[f32], h_prev: &[f32]) -> Vec<f32> {
        let mut h = vec![0.0; self.hidden];
        self.infer_into(x, h_prev, &mut h);
        h
    }

    /// One inference step into a caller-owned state buffer. All gate
    /// temporaries come from the thread-local scratch pool, so the step
    /// performs zero heap allocations after warm-up — this is the inner
    /// loop of recurrent tracker scoring.
    pub fn infer_into(&self, x: &[f32], h_prev: &[f32], h_out: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), self.in_dim);
        debug_assert_eq!(h_prev.len(), self.hidden);
        let mut z = kernels::take_buf(0);
        let mut r = kernels::take_buf(0);
        let mut hcand = kernels::take_buf(0);
        self.gate_matvec_into(0, x, h_prev, &mut z);
        z.iter_mut().for_each(|v| *v = sigmoid(*v));
        self.gate_matvec_into(1, x, h_prev, &mut r);
        r.iter_mut().for_each(|v| *v = sigmoid(*v));
        // reuse r's buffer pattern: rh = r ⊙ h_prev into a fourth buffer
        let mut rh = kernels::take_buf(self.hidden);
        for ((d, rv), hv) in rh.iter_mut().zip(r.iter()).zip(h_prev.iter()) {
            *d = rv * hv;
        }
        self.gate_matvec_into(2, x, &rh, &mut hcand);
        hcand.iter_mut().for_each(|v| *v = v.tanh());
        h_out.clear();
        h_out.extend((0..self.hidden).map(|i| (1.0 - z[i]) * h_prev[i] + z[i] * hcand[i]));
        kernels::put_buf(z);
        kernels::put_buf(r);
        kernels::put_buf(rh);
        kernels::put_buf(hcand);
    }

    fn step_impl(&mut self, x: &[f32], h_prev: &[f32], cache: bool) -> Vec<f32> {
        debug_assert_eq!(x.len(), self.in_dim);
        debug_assert_eq!(h_prev.len(), self.hidden);
        let mut z = vec![0.0; self.hidden];
        let mut r = vec![0.0; self.hidden];
        let mut hcand = vec![0.0; self.hidden];
        self.gate_matvec_into(0, x, h_prev, &mut z);
        z.iter_mut().for_each(|v| *v = sigmoid(*v));
        self.gate_matvec_into(1, x, h_prev, &mut r);
        r.iter_mut().for_each(|v| *v = sigmoid(*v));
        let rh: Vec<f32> = r.iter().zip(h_prev).map(|(r, h)| r * h).collect();
        self.gate_matvec_into(2, x, &rh, &mut hcand);
        hcand.iter_mut().for_each(|v| *v = v.tanh());
        let h: Vec<f32> = (0..self.hidden)
            .map(|i| (1.0 - z[i]) * h_prev[i] + z[i] * hcand[i])
            .collect();
        if cache {
            self.caches.push(StepCache {
                x: x.to_vec(),
                h_prev: h_prev.to_vec(),
                z,
                r,
                hcand,
            });
        }
        h
    }

    /// Run a whole sequence from the zero state, returning the final hidden
    /// state (training mode: caches each step).
    pub fn forward_sequence(&mut self, xs: &[Vec<f32>]) -> Vec<f32> {
        let mut h = self.zero_state();
        for x in xs {
            h = self.forward(x, &h);
        }
        h
    }

    /// Inference over a whole sequence from the zero state.
    pub fn infer_sequence(&self, xs: &[Vec<f32>]) -> Vec<f32> {
        let mut h = self.zero_state();
        for x in xs {
            h = self.infer(x, &h);
        }
        h
    }

    /// Backprop through all cached steps given dL/dh_final. Returns
    /// dL/dx for each step (in forward order) and clears the caches.
    pub fn backward_sequence(&mut self, grad_h_final: &[f32]) -> Vec<Vec<f32>> {
        let hd = self.hidden;
        let mut grad_h = grad_h_final.to_vec();
        let mut grad_xs: Vec<Vec<f32>> = Vec::with_capacity(self.caches.len());
        let caches = std::mem::take(&mut self.caches);
        for c in caches.iter().rev() {
            // h = (1 - z) h_prev + z ĥ
            let mut d_z = vec![0.0; hd];
            let mut d_hcand = vec![0.0; hd];
            let mut d_hprev = vec![0.0; hd];
            for i in 0..hd {
                d_z[i] = grad_h[i] * (c.hcand[i] - c.h_prev[i]);
                d_hcand[i] = grad_h[i] * c.z[i];
                d_hprev[i] = grad_h[i] * (1.0 - c.z[i]);
            }
            // pre-activation grads
            let d_z_pre: Vec<f32> = (0..hd).map(|i| d_z[i] * c.z[i] * (1.0 - c.z[i])).collect();
            let d_hcand_pre: Vec<f32> = (0..hd)
                .map(|i| d_hcand[i] * (1.0 - c.hcand[i] * c.hcand[i]))
                .collect();

            let rh: Vec<f32> = c.r.iter().zip(&c.h_prev).map(|(r, h)| r * h).collect();
            let mut grad_x = vec![0.0; self.in_dim];

            // ĥ gate (index 2): inputs are x and r ⊙ h_prev
            let mut d_rh = vec![0.0; hd];
            self.accumulate_gate(2, &d_hcand_pre, &c.x, &rh, &mut grad_x, &mut d_rh);
            // propagate through r ⊙ h_prev
            let mut d_r = vec![0.0; hd];
            for i in 0..hd {
                d_r[i] = d_rh[i] * c.h_prev[i];
                d_hprev[i] += d_rh[i] * c.r[i];
            }
            let d_r_pre: Vec<f32> = (0..hd).map(|i| d_r[i] * c.r[i] * (1.0 - c.r[i])).collect();

            // r gate (index 1) and z gate (index 0): inputs are x and h_prev
            self.accumulate_gate(1, &d_r_pre, &c.x, &c.h_prev, &mut grad_x, &mut d_hprev);
            self.accumulate_gate(0, &d_z_pre, &c.x, &c.h_prev, &mut grad_x, &mut d_hprev);

            grad_xs.push(grad_x);
            grad_h = d_hprev;
        }
        grad_xs.reverse();
        grad_xs
    }

    /// Accumulate parameter grads for one gate and add the contributions to
    /// dL/dx and dL/d(recurrent input).
    fn accumulate_gate(
        &mut self,
        gate: usize,
        d_pre: &[f32],
        x: &[f32],
        hin: &[f32],
        grad_x: &mut [f32],
        grad_hin: &mut [f32],
    ) {
        let hd = self.hidden;
        let woff = gate * hd * self.in_dim;
        let uoff = gate * hd * hd;
        let boff = gate * hd;
        for (o, &d) in d_pre.iter().enumerate().take(hd) {
            if d == 0.0 {
                continue;
            }
            self.b.g[boff + o] += d;
            for (i, xi) in x.iter().enumerate() {
                self.w.g[woff + o * self.in_dim + i] += d * xi;
                grad_x[i] += d * self.w.w[woff + o * self.in_dim + i];
            }
            for (j, hj) in hin.iter().enumerate() {
                self.u.g[uoff + o * hd + j] += d * hj;
                grad_hin[j] += d * self.u.w[uoff + o * hd + j];
            }
        }
    }

    /// Apply one optimizer step to all kernels and biases.
    pub fn step(&mut self, lr: f32, kind: OptimKind) {
        self.w.step(lr, kind);
        self.u.step(lr, kind);
        self.b.step(lr, kind);
    }

    /// Clear accumulated gradients and cached steps.
    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.u.zero_grad();
        self.b.zero_grad();
        self.caches.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mse, mse_grad};

    #[test]
    fn infer_matches_forward() {
        let mut init = XavierInit::new(5);
        let mut g = GruCell::new(3, 4, &mut init);
        let xs = vec![vec![0.1, 0.2, 0.3], vec![-0.5, 0.0, 0.5]];
        let a = g.forward_sequence(&xs);
        let b = g.infer_sequence(&xs);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn hidden_state_bounded() {
        let mut init = XavierInit::new(6);
        let g = GruCell::new(2, 8, &mut init);
        let xs: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32, -(i as f32)]).collect();
        let h = g.infer_sequence(&xs);
        // GRU state is a convex combination of tanh outputs, so |h| <= 1.
        assert!(h.iter().all(|v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn gradient_check_input_kernel() {
        let mut init = XavierInit::new(8);
        let mut g = GruCell::new(2, 3, &mut init);
        let xs = vec![vec![0.4, -0.2], vec![0.1, 0.9], vec![-0.6, 0.3]];
        let target = vec![0.2, -0.1, 0.4];

        let h = g.forward_sequence(&xs);
        let gh = mse_grad(&h, &target);
        g.backward_sequence(&gh);
        let analytic = g.w.g.clone();

        let eps = 1e-3;
        #[allow(clippy::needless_range_loop)]
        for i in 0..g.w.w.len() {
            let orig = g.w.w[i];
            g.w.w[i] = orig + eps;
            let lp = mse(&g.infer_sequence(&xs), &target);
            g.w.w[i] = orig - eps;
            let lm = mse(&g.infer_sequence(&xs), &target);
            g.w.w[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic[i] - numeric).abs() < 2e-2,
                "w[{i}] analytic {} numeric {}",
                analytic[i],
                numeric
            );
        }
    }

    #[test]
    fn gradient_check_recurrent_kernel() {
        let mut init = XavierInit::new(9);
        let mut g = GruCell::new(2, 3, &mut init);
        let xs = vec![vec![0.4, -0.2], vec![0.1, 0.9], vec![-0.6, 0.3]];
        let target = vec![0.0, 0.5, -0.5];
        let h = g.forward_sequence(&xs);
        let gh = mse_grad(&h, &target);
        g.backward_sequence(&gh);
        let analytic = g.u.g.clone();
        let eps = 1e-3;
        #[allow(clippy::needless_range_loop)]
        for i in 0..g.u.w.len() {
            let orig = g.u.w[i];
            g.u.w[i] = orig + eps;
            let lp = mse(&g.infer_sequence(&xs), &target);
            g.u.w[i] = orig - eps;
            let lm = mse(&g.infer_sequence(&xs), &target);
            g.u.w[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic[i] - numeric).abs() < 2e-2,
                "u[{i}] analytic {} numeric {}",
                analytic[i],
                numeric
            );
        }
    }

    #[test]
    fn learns_to_remember_first_input() {
        // Task: output h ≈ sign of the first element of the first input,
        // regardless of later inputs. Requires carrying state.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(10);
        let mut init = XavierInit::new(10);
        let mut g = GruCell::new(1, 6, &mut init);
        let mut head_w = Param::new(init.sample(6, 6, 1));

        let make_seq = |rng: &mut rand_chacha::ChaCha8Rng| -> (Vec<Vec<f32>>, f32) {
            let first: f32 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let mut xs = vec![vec![first]];
            for _ in 0..4 {
                xs.push(vec![rng.gen_range(-0.3..0.3)]);
            }
            (xs, (first + 1.0) / 2.0)
        };

        let mut last_losses = Vec::new();
        for epoch in 0..400 {
            let mut epoch_loss = 0.0;
            for _ in 0..8 {
                let (xs, t) = make_seq(&mut rng);
                let h = g.forward_sequence(&xs);
                let logit: f32 = h.iter().zip(&head_w.w).map(|(h, w)| h * w).sum();
                epoch_loss += crate::bce_with_logits(&[logit], &[t]);
                let dlogit = crate::bce_with_logits_grad(&[logit], &[t])[0];
                let gh: Vec<f32> = head_w.w.iter().map(|w| dlogit * w).collect();
                for (i, h_i) in h.iter().enumerate() {
                    head_w.g[i] += dlogit * h_i;
                }
                g.backward_sequence(&gh);
            }
            g.step(0.02, OptimKind::Adam);
            head_w.step(0.02, OptimKind::Adam);
            if epoch >= 390 {
                last_losses.push(epoch_loss / 8.0);
            }
        }
        let final_loss = last_losses.iter().sum::<f32>() / last_losses.len() as f32;
        assert!(final_loss < 0.25, "final loss {final_loss}");
    }
}
