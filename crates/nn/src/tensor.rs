//! A minimal 3-D tensor (channels × height × width) for convolutional
//! layers.

use serde::{Deserialize, Serialize};

/// A dense `C × H × W` tensor of `f32`, stored row-major per channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor3 {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Row-major per-channel data (length `c * h * w`).
    pub data: Vec<f32>,
}

impl Tensor3 {
    /// All-zero tensor.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Tensor3 {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    /// Wrap existing data; panics on a length mismatch.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), c * h * w, "tensor data length mismatch");
        Tensor3 { c, h, w, data }
    }

    #[inline]
    /// Flat index of element (c, y, x).
    ///
    /// Bounds are checked by `debug_assert!` only: release builds pay no
    /// per-element comparison, so kernel inner loops built on these
    /// accessors are not gated on index arithmetic. The assertions fire
    /// in debug builds (including the test profile), which is where the
    /// equivalence suites exercise every shape.
    pub fn idx(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(
            c < self.c && y < self.h && x < self.w,
            "tensor index ({c},{y},{x}) out of bounds for {}x{}x{}",
            self.c,
            self.h,
            self.w
        );
        (c * self.h + y) * self.w + x
    }

    #[inline]
    /// Read element (c, y, x).
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        let i = self.idx(c, y, x);
        debug_assert!(i < self.data.len());
        // SAFETY: `idx` is < c*h*w = data.len() whenever the per-axis
        // bounds hold, which `idx`'s debug assertion enforces; callers
        // stay inside the tensor's declared shape.
        unsafe { *self.data.get_unchecked(i) }
    }

    #[inline]
    /// Write element (c, y, x).
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        let i = self.idx(c, y, x);
        debug_assert!(i < self.data.len());
        // SAFETY: as in `get`.
        unsafe {
            *self.data.get_unchecked_mut(i) = v;
        }
    }

    #[inline]
    /// Add to element (c, y, x).
    pub fn add_at(&mut self, c: usize, y: usize, x: usize, v: f32) {
        let i = self.idx(c, y, x);
        debug_assert!(i < self.data.len());
        // SAFETY: as in `get`.
        unsafe {
            *self.data.get_unchecked_mut(i) += v;
        }
    }

    #[inline]
    /// The contiguous row `(c, y, 0..w)` as a slice.
    pub fn row(&self, c: usize, y: usize) -> &[f32] {
        let i = self.idx(c, y, 0);
        &self.data[i..i + self.w]
    }

    /// Reshape in place to `(c, h, w)`, reusing the allocation; data is
    /// zeroed. Grows the buffer only when the new shape needs more room.
    pub fn reset(&mut self, c: usize, h: usize, w: usize) {
        self.c = c;
        self.h = h;
        self.w = w;
        self.data.clear();
        self.data.resize(c * h * w, 0.0);
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|v| *v = f(*v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor3::zeros(2, 3, 4);
        t.set(1, 2, 3, 7.5);
        assert_eq!(t.get(1, 2, 3), 7.5);
        assert_eq!(t.data[t.idx(1, 2, 3)], 7.5);
        assert_eq!(t.len(), 24);
    }

    #[test]
    fn channel_layout_is_contiguous() {
        let mut t = Tensor3::zeros(2, 2, 2);
        t.set(0, 0, 0, 1.0);
        t.set(1, 0, 0, 2.0);
        assert_eq!(t.idx(1, 0, 0), 4);
        assert_eq!(t.data[0], 1.0);
        assert_eq!(t.data[4], 2.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_vec_checks_len() {
        Tensor3::from_vec(1, 2, 2, vec![0.0; 3]);
    }

    #[test]
    fn row_and_reset() {
        let mut t = Tensor3::from_vec(2, 2, 3, (0..12).map(|i| i as f32).collect());
        assert_eq!(t.row(1, 0), &[6.0, 7.0, 8.0]);
        let cap = t.data.capacity();
        t.reset(1, 2, 2);
        assert_eq!((t.c, t.h, t.w), (1, 2, 2));
        assert!(t.data.iter().all(|&v| v == 0.0));
        assert_eq!(t.data.capacity(), cap, "reset must reuse the allocation");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of bounds")]
    fn debug_bounds_assert_fires() {
        let t = Tensor3::zeros(1, 2, 2);
        t.get(0, 2, 0);
    }

    #[test]
    fn map_inplace_applies() {
        let mut t = Tensor3::from_vec(1, 1, 3, vec![1.0, -2.0, 3.0]);
        t.map_inplace(|v| v.abs());
        assert_eq!(t.data, vec![1.0, 2.0, 3.0]);
    }
}
