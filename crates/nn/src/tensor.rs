//! A minimal 3-D tensor (channels × height × width) for convolutional
//! layers.

use serde::{Deserialize, Serialize};

/// A dense `C × H × W` tensor of `f32`, stored row-major per channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor3 {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Row-major per-channel data (length `c * h * w`).
    pub data: Vec<f32>,
}

impl Tensor3 {
    /// All-zero tensor.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Tensor3 {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    /// Wrap existing data; panics on a length mismatch.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), c * h * w, "tensor data length mismatch");
        Tensor3 { c, h, w, data }
    }

    #[inline]
    /// Flat index of element (c, y, x).
    ///
    /// Bounds are checked by `debug_assert!` only: release builds pay no
    /// per-element comparison, so kernel inner loops built on these
    /// accessors are not gated on index arithmetic. The assertions fire
    /// in debug builds (including the test profile), which is where the
    /// equivalence suites exercise every shape.
    pub fn idx(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(
            c < self.c && y < self.h && x < self.w,
            "tensor index ({c},{y},{x}) out of bounds for {}x{}x{}",
            self.c,
            self.h,
            self.w
        );
        (c * self.h + y) * self.w + x
    }

    #[inline]
    /// Read element (c, y, x).
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        let i = self.idx(c, y, x);
        debug_assert!(i < self.data.len());
        // SAFETY: `idx` is < c*h*w = data.len() whenever the per-axis
        // bounds hold, which `idx`'s debug assertion enforces; callers
        // stay inside the tensor's declared shape.
        unsafe { *self.data.get_unchecked(i) }
    }

    #[inline]
    /// Write element (c, y, x).
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        let i = self.idx(c, y, x);
        debug_assert!(i < self.data.len());
        // SAFETY: as in `get`.
        unsafe {
            *self.data.get_unchecked_mut(i) = v;
        }
    }

    #[inline]
    /// Add to element (c, y, x).
    pub fn add_at(&mut self, c: usize, y: usize, x: usize, v: f32) {
        let i = self.idx(c, y, x);
        debug_assert!(i < self.data.len());
        // SAFETY: as in `get`.
        unsafe {
            *self.data.get_unchecked_mut(i) += v;
        }
    }

    #[inline]
    /// The contiguous row `(c, y, 0..w)` as a slice.
    pub fn row(&self, c: usize, y: usize) -> &[f32] {
        let i = self.idx(c, y, 0);
        &self.data[i..i + self.w]
    }

    /// Reshape in place to `(c, h, w)`, reusing the allocation; data is
    /// zeroed. Grows the buffer only when the new shape needs more room.
    pub fn reset(&mut self, c: usize, h: usize, w: usize) {
        self.c = c;
        self.h = h;
        self.w = w;
        self.data.clear();
        self.data.resize(c * h * w, 0.0);
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|v| *v = f(*v));
    }
}

/// A batch of `n` same-shape `C × H × W` tensors stored **channel-major**
/// (`C × N × H × W`): for each channel, the `n` item planes sit
/// consecutively, so item `i`'s plane for channel `c` is the contiguous
/// slice `data[(c*n + i)*h*w ..][..h*w]`.
///
/// This layout is what makes batched convolution bitwise-identical to
/// the looped kernel *by construction*: the im2col matrix for the whole
/// batch is the per-item matrices placed side by side column-wise, so a
/// single cache-blocked GEMM over the widened column dimension performs
/// exactly the per-element accumulation the per-item GEMM would — and
/// its output matrix *is* the next layer's `BatchTensor3`, so multi-layer
/// forwards chain with no per-layer gather/scatter.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchTensor3 {
    /// Batch size (number of items).
    pub n: usize,
    /// Channels per item.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// `C × N × H × W` data (length `c * n * h * w`).
    pub data: Vec<f32>,
}

impl BatchTensor3 {
    /// All-zero batch.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        BatchTensor3 {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Gather `items` (all the same shape) into a fresh batch.
    pub fn from_items(items: &[&Tensor3]) -> Self {
        assert!(!items.is_empty(), "cannot batch zero items");
        let (c, h, w) = (items[0].c, items[0].h, items[0].w);
        let mut b = BatchTensor3::zeros(items.len(), c, h, w);
        b.gather(items);
        b
    }

    /// Copy `items` into this batch; shapes must match exactly.
    pub fn gather(&mut self, items: &[&Tensor3]) {
        assert_eq!(items.len(), self.n, "batch size mismatch");
        let plane = self.h * self.w;
        for (i, t) in items.iter().enumerate() {
            assert_eq!(
                (t.c, t.h, t.w),
                (self.c, self.h, self.w),
                "batched items must share one shape"
            );
            for c in 0..self.c {
                let dst = (c * self.n + i) * plane;
                self.data[dst..dst + plane].copy_from_slice(&t.data[c * plane..(c + 1) * plane]);
            }
        }
    }

    /// Copy item `i` out into `t` (reshaped to fit).
    pub fn item_into(&self, i: usize, t: &mut Tensor3) {
        assert!(i < self.n, "item index out of range");
        t.reset(self.c, self.h, self.w);
        let plane = self.h * self.w;
        for c in 0..self.c {
            let src = (c * self.n + i) * plane;
            t.data[c * plane..(c + 1) * plane].copy_from_slice(&self.data[src..src + plane]);
        }
    }

    /// Overwrite item `i` from `t`; shape must match.
    pub fn set_item(&mut self, i: usize, t: &Tensor3) {
        assert!(i < self.n, "item index out of range");
        assert_eq!(
            (t.c, t.h, t.w),
            (self.c, self.h, self.w),
            "item shape mismatch"
        );
        let plane = self.h * self.w;
        for c in 0..self.c {
            let dst = (c * self.n + i) * plane;
            self.data[dst..dst + plane].copy_from_slice(&t.data[c * plane..(c + 1) * plane]);
        }
    }

    #[inline]
    /// The contiguous row `(c, i, y, 0..w)` as a slice.
    pub fn row(&self, c: usize, i: usize, y: usize) -> &[f32] {
        debug_assert!(c < self.c && i < self.n && y < self.h);
        let start = ((c * self.n + i) * self.h + y) * self.w;
        &self.data[start..start + self.w]
    }

    #[inline]
    /// Read element (c, i, y, x).
    pub fn get(&self, c: usize, i: usize, y: usize, x: usize) -> f32 {
        debug_assert!(x < self.w);
        self.row(c, i, y)[x]
    }

    /// Reshape in place, reusing the allocation; data is zeroed.
    pub fn reset(&mut self, n: usize, c: usize, h: usize, w: usize) {
        self.n = n;
        self.c = c;
        self.h = h;
        self.w = w;
        self.data.clear();
        self.data.resize(n * c * h * w, 0.0);
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the batch holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor3::zeros(2, 3, 4);
        t.set(1, 2, 3, 7.5);
        assert_eq!(t.get(1, 2, 3), 7.5);
        assert_eq!(t.data[t.idx(1, 2, 3)], 7.5);
        assert_eq!(t.len(), 24);
    }

    #[test]
    fn channel_layout_is_contiguous() {
        let mut t = Tensor3::zeros(2, 2, 2);
        t.set(0, 0, 0, 1.0);
        t.set(1, 0, 0, 2.0);
        assert_eq!(t.idx(1, 0, 0), 4);
        assert_eq!(t.data[0], 1.0);
        assert_eq!(t.data[4], 2.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_vec_checks_len() {
        Tensor3::from_vec(1, 2, 2, vec![0.0; 3]);
    }

    #[test]
    fn row_and_reset() {
        let mut t = Tensor3::from_vec(2, 2, 3, (0..12).map(|i| i as f32).collect());
        assert_eq!(t.row(1, 0), &[6.0, 7.0, 8.0]);
        let cap = t.data.capacity();
        t.reset(1, 2, 2);
        assert_eq!((t.c, t.h, t.w), (1, 2, 2));
        assert!(t.data.iter().all(|&v| v == 0.0));
        assert_eq!(t.data.capacity(), cap, "reset must reuse the allocation");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of bounds")]
    fn debug_bounds_assert_fires() {
        let t = Tensor3::zeros(1, 2, 2);
        t.get(0, 2, 0);
    }

    #[test]
    fn map_inplace_applies() {
        let mut t = Tensor3::from_vec(1, 1, 3, vec![1.0, -2.0, 3.0]);
        t.map_inplace(|v| v.abs());
        assert_eq!(t.data, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn batch_gather_scatter_roundtrip() {
        let a = Tensor3::from_vec(2, 2, 2, (0..8).map(|i| i as f32).collect());
        let b = Tensor3::from_vec(2, 2, 2, (100..108).map(|i| i as f32).collect());
        let batch = BatchTensor3::from_items(&[&a, &b]);
        assert_eq!((batch.n, batch.c, batch.h, batch.w), (2, 2, 2, 2));
        // channel-major: channel 0 holds item 0's plane then item 1's
        assert_eq!(&batch.data[0..4], &a.data[0..4]);
        assert_eq!(&batch.data[4..8], &b.data[0..4]);
        assert_eq!(&batch.data[8..12], &a.data[4..8]);
        assert_eq!(batch.get(1, 1, 0, 1), b.get(1, 0, 1));
        let mut out = Tensor3::zeros(1, 1, 1);
        batch.item_into(0, &mut out);
        assert_eq!(out, a);
        batch.item_into(1, &mut out);
        assert_eq!(out, b);
    }

    #[test]
    fn batch_set_item_overwrites_one_plane_set() {
        let a = Tensor3::zeros(1, 2, 2);
        let mut batch = BatchTensor3::from_items(&[&a, &a, &a]);
        let b = Tensor3::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        batch.set_item(1, &b);
        let mut out = Tensor3::zeros(1, 1, 1);
        batch.item_into(0, &mut out);
        assert_eq!(out, a);
        batch.item_into(1, &mut out);
        assert_eq!(out, b);
    }

    #[test]
    fn batch_reset_reuses_allocation() {
        let mut b = BatchTensor3::zeros(4, 2, 3, 3);
        let cap = b.data.capacity();
        b.reset(2, 1, 2, 2);
        assert_eq!(b.len(), 8);
        assert_eq!(b.data.capacity(), cap, "reset must reuse the allocation");
        assert!(!b.is_empty());
    }
}
