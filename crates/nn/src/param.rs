//! Trainable parameter buffers with built-in optimizer state.

use serde::{Deserialize, Serialize};

/// Which optimizer update [`Param::step`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimKind {
    /// Plain SGD with the given momentum coefficient.
    Sgd {
        /// Momentum coefficient (0 disables momentum).
        momentum: f32,
    },
    /// Adam with standard (β1, β2, ε) = (0.9, 0.999, 1e-8).
    Adam,
}

/// A flat trainable parameter buffer (weights + accumulated gradients +
/// optimizer moments).
///
/// Layers expose their `Param`s so that a training loop can zero gradients
/// and step them uniformly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Weights.
    pub w: Vec<f32>,
    /// Accumulated gradients (same length as `w`).
    pub g: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Param {
    /// Wrap initial weights.
    pub fn new(w: Vec<f32>) -> Self {
        let n = w.len();
        Param {
            w,
            g: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// All-zero parameters of length `n`.
    pub fn zeros(n: usize) -> Self {
        Param::new(vec![0.0; n])
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Reset accumulated gradients to zero.
    pub fn zero_grad(&mut self) {
        self.g.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Apply one optimizer update with learning rate `lr` and clear the
    /// gradient buffer.
    pub fn step(&mut self, lr: f32, kind: OptimKind) {
        match kind {
            OptimKind::Sgd { momentum } => {
                for i in 0..self.w.len() {
                    // m doubles as the velocity buffer for SGD.
                    self.m[i] = momentum * self.m[i] + self.g[i];
                    self.w[i] -= lr * self.m[i];
                }
            }
            OptimKind::Adam => {
                self.t += 1;
                const B1: f32 = 0.9;
                const B2: f32 = 0.999;
                const EPS: f32 = 1e-8;
                let bc1 = 1.0 - B1.powi(self.t as i32);
                let bc2 = 1.0 - B2.powi(self.t as i32);
                for i in 0..self.w.len() {
                    let g = self.g[i];
                    self.m[i] = B1 * self.m[i] + (1.0 - B1) * g;
                    self.v[i] = B2 * self.v[i] + (1.0 - B2) * g * g;
                    let mhat = self.m[i] / bc1;
                    let vhat = self.v[i] / bc2;
                    self.w[i] -= lr * mhat / (vhat.sqrt() + EPS);
                }
            }
        }
        self.zero_grad();
    }

    /// Global L2 norm of the gradient, for clipping diagnostics.
    pub fn grad_norm(&self) -> f32 {
        self.g.iter().map(|g| g * g).sum::<f32>().sqrt()
    }

    /// Scale gradients so their global norm is at most `max_norm`.
    pub fn clip_grad(&mut self, max_norm: f32) {
        let n = self.grad_norm();
        if n > max_norm && n > 0.0 {
            let s = max_norm / n;
            self.g.iter_mut().for_each(|g| *g *= s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut p = Param::new(vec![1.0, -1.0]);
        p.g = vec![0.5, -0.5];
        p.step(0.1, OptimKind::Sgd { momentum: 0.0 });
        assert!((p.w[0] - 0.95).abs() < 1e-6);
        assert!((p.w[1] + 0.95).abs() < 1e-6);
        // gradient cleared after step
        assert_eq!(p.g, vec![0.0, 0.0]);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut p = Param::new(vec![0.0]);
        p.g = vec![1.0];
        p.step(1.0, OptimKind::Sgd { momentum: 0.9 });
        let w1 = p.w[0]; // -1
        p.g = vec![1.0];
        p.step(1.0, OptimKind::Sgd { momentum: 0.9 });
        // velocity = 0.9*1 + 1 = 1.9, so second step is larger
        assert!((w1 - p.w[0]) > 1.0);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimize f(w) = (w - 3)^2
        let mut p = Param::new(vec![0.0]);
        for _ in 0..2000 {
            p.g = vec![2.0 * (p.w[0] - 3.0)];
            p.step(0.05, OptimKind::Adam);
        }
        assert!((p.w[0] - 3.0).abs() < 1e-2, "w = {}", p.w[0]);
    }

    #[test]
    fn clip_grad_caps_norm() {
        let mut p = Param::zeros(2);
        p.g = vec![3.0, 4.0]; // norm 5
        p.clip_grad(1.0);
        assert!((p.grad_norm() - 1.0).abs() < 1e-5);
        // direction preserved
        assert!((p.g[0] / p.g[1] - 0.75).abs() < 1e-5);
    }
}
