#![warn(missing_docs)]

//! A small, pure-Rust neural-network library.
//!
//! The OTIF paper trains two kinds of models per dataset:
//!
//! 1. a **segmentation proxy model** — a convolutional encoder/decoder that
//!    scores every 32×32 cell of a low-resolution frame with the likelihood
//!    that it intersects an object detection (§3.3); and
//! 2. a **recurrent tracking model** — per-detection features fed through a
//!    GRU over the track prefix plus an MLP matching head (§3.4).
//!
//! No GPU or external ML runtime is available in this reproduction, so this
//! crate provides the minimum viable training stack from scratch: parameter
//! buffers with Adam/SGD updates, dense layers, strided 2-D convolutions,
//! a GRU cell with backpropagation through time, the usual activations, and
//! binary-cross-entropy / MSE losses. Everything is deterministic given a
//! seed.
//!
//! Layers follow a simple explicit-backprop convention instead of a tape:
//! `forward` caches whatever it needs, `backward` consumes the output
//! gradient and accumulates parameter gradients, returning the input
//! gradient. An optimizer step then walks the layer's [`Param`]s.

pub mod conv;
pub mod dense;
pub mod gru;
pub mod init;
pub mod kernels;
pub mod loss;
pub mod param;
pub mod tensor;

pub use conv::Conv2d;
pub use dense::{Activation, Dense, Mlp};
pub use gru::GruCell;
pub use init::XavierInit;
pub use kernels::{ConvShape, KernelPath};
pub use loss::{bce_with_logits, bce_with_logits_grad, mse, mse_grad, sigmoid};
pub use param::{OptimKind, Param};
pub use tensor::{BatchTensor3, Tensor3};
