//! Fast numeric kernels: im2col + cache-blocked GEMM convolution,
//! blocked matmul/matvec, and a thread-local scratch arena for
//! zero-allocation inference paths.
//!
//! Every fast kernel here accumulates in **exactly the same order** as
//! its naive reference (`k` strictly increasing per output element, the
//! bias seeded first), so the fast paths are bit-identical to the plain
//! nested loops — the speedup comes from removing per-element bounds
//! checks and branches, streaming over contiguous rows the compiler can
//! vectorize, and blocking for cache reuse, never from re-associating
//! floating-point sums. That property is what lets [`crate::Conv2d`]
//! switch paths by problem size without perturbing training
//! trajectories, and what keeps parallel evaluation byte-identical to
//! sequential evaluation downstream.
//!
//! The naive references stay exported ([`conv2d_naive`],
//! [`matmul_naive`]) as the oracle the proptest equivalence suite and
//! the `kernels` bench bin compare against.

use crate::tensor::{BatchTensor3, Tensor3};
use std::cell::RefCell;

/// A pool of reusable `f32` buffers.
///
/// Inference paths call [`Scratch::take`] for every temporary they
/// need and [`Scratch::put`] the buffer back when done; after the first
/// call at a given set of shapes ("warm-up") the pool serves every
/// request from retained capacity and the path performs no heap
/// allocation. Access goes through the thread-local [`with_scratch`],
/// so `&self` inference stays `Sync` and each evaluation-pool worker
/// warms its own arena.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
}

/// Retained buffers per thread; beyond this, returned buffers are freed.
const SCRATCH_POOL_CAP: usize = 32;

impl Scratch {
    /// Take a zeroed buffer of length `len` from the pool (allocating
    /// only if the pool is empty or every pooled buffer is too small).
    ///
    /// Picks the smallest pooled buffer that already fits `len`, so that
    /// small temporaries never consume the large im2col buffers; when
    /// nothing fits, the largest buffer is grown in place.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, v) in self.pool.iter().enumerate() {
            let cap = v.capacity();
            best = Some(match best {
                None => (i, cap),
                Some((bi, bcap)) => {
                    let better = match (cap >= len, bcap >= len) {
                        (true, true) => cap < bcap,
                        (true, false) => true,
                        (false, true) => false,
                        (false, false) => cap > bcap,
                    };
                    if better {
                        (i, cap)
                    } else {
                        (bi, bcap)
                    }
                }
            });
        }
        let mut v = match best {
            Some((i, _)) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// Return a buffer to the pool for reuse.
    pub fn put(&mut self, v: Vec<f32>) {
        if self.pool.len() < SCRATCH_POOL_CAP && v.capacity() > 0 {
            self.pool.push(v);
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Run `f` with this thread's scratch arena.
///
/// Nested calls are fine as long as inner buffers are taken after (and
/// returned before) outer ones or simply taken in any order — the pool
/// hands out owned `Vec`s, so there is no aliasing to manage.
pub fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Take a zeroed buffer from this thread's scratch pool.
pub fn take_buf(len: usize) -> Vec<f32> {
    with_scratch(|s| s.take(len))
}

/// Return a buffer to this thread's scratch pool.
pub fn put_buf(v: Vec<f32>) {
    with_scratch(|s| s.put(v));
}

// ---------------------------------------------------------------------------
// matvec / matmul
// ---------------------------------------------------------------------------

/// `y[r] += Σ_c w[r][c] · x[c]` for a row-major `rows × cols` matrix.
///
/// Accumulates into whatever `y` already holds (callers seed it with the
/// bias), strictly in increasing-`c` order per row — the same order as a
/// plain nested loop. The zipped-slice form carries no bounds checks in
/// the inner loop.
#[inline]
pub fn matvec_acc(w: &[f32], x: &[f32], y: &mut [f32]) {
    let cols = x.len();
    debug_assert_eq!(w.len(), y.len() * cols, "matvec shape mismatch");
    for (r, yr) in y.iter_mut().enumerate() {
        let row = &w[r * cols..(r + 1) * cols];
        let mut acc = *yr;
        for (wv, xv) in row.iter().zip(x.iter()) {
            acc += wv * xv;
        }
        *yr = acc;
    }
}

/// Naive reference matmul: `c[m][n] = Σ_k a[m][k] · b[k][n]`
/// (row-major, `c` pre-seeded by the caller, e.g. with a bias).
pub fn matmul_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul A shape");
    assert_eq!(b.len(), k * n, "matmul B shape");
    assert_eq!(c.len(), m * n, "matmul C shape");
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Column-tile width for [`matmul_blocked`]: 1024 f32 ≈ 4 KiB per B row,
/// so a full k-strip of B tiles stays L1/L2-resident for typical k.
const GEMM_N_BLOCK: usize = 1024;

/// Cache-blocked matmul: `c[m][n] += Σ_k a[m][k] · b[k][n]`.
///
/// Loop order is `i, jj, p, j` (an axpy over each B-row tile), which
/// keeps every inner access contiguous and accumulates each `c[i][j]`
/// in strictly increasing `p` — bit-identical to [`matmul_naive`].
pub fn matmul_blocked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul A shape");
    assert_eq!(b.len(), k * n, "matmul B shape");
    assert_eq!(c.len(), m * n, "matmul C shape");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        let mut jj = 0;
        while jj < n {
            let jw = GEMM_N_BLOCK.min(n - jj);
            let c_tile = &mut c_row[jj..jj + jw];
            for (p, &av) in a_row.iter().enumerate() {
                let b_tile = &b[p * n + jj..p * n + jj + jw];
                for (cv, bv) in c_tile.iter_mut().zip(b_tile.iter()) {
                    *cv += av * bv;
                }
            }
            jj += jw;
        }
    }
}

// ---------------------------------------------------------------------------
// convolution
// ---------------------------------------------------------------------------

/// Static shape of a 2-D convolution (square kernel, symmetric stride
/// and zero padding), shared by the naive and GEMM paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Square kernel side.
    pub ksize: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on each border.
    pub pad: usize,
}

impl ConvShape {
    /// Output spatial size for an input of `(h, w)`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad).saturating_sub(self.ksize) / self.stride + 1;
        let ow = (w + 2 * self.pad).saturating_sub(self.ksize) / self.stride + 1;
        (oh, ow)
    }

    /// Multiply–accumulates of one forward pass on an `(h, w)` input.
    pub fn macs(&self, h: usize, w: usize) -> usize {
        let (oh, ow) = self.out_size(h, w);
        self.out_ch * self.in_ch * self.ksize * self.ksize * oh * ow
    }
}

/// Which convolution kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPath {
    /// Pick by problem size ([`conv_path_for`]).
    #[default]
    Auto,
    /// The plain nested loops (reference oracle).
    Naive,
    /// im2col + cache-blocked GEMM.
    Gemm,
}

/// MAC threshold above which the GEMM path wins: below this the im2col
/// materialization overhead dominates the branchy-loop savings.
const GEMM_MIN_MACS: usize = 8 * 1024;

/// Resolve [`KernelPath::Auto`] for a given problem size.
pub fn conv_path_for(shape: &ConvShape, h: usize, w: usize, path: KernelPath) -> KernelPath {
    match path {
        KernelPath::Auto => {
            if shape.macs(h, w) >= GEMM_MIN_MACS {
                KernelPath::Gemm
            } else {
                KernelPath::Naive
            }
        }
        forced => forced,
    }
}

/// Resolve [`KernelPath::Auto`] for a batched problem. The whole stack
/// feeds one im2col + one GEMM, so the threshold compares the *stacked*
/// MAC count: batching pushes per-item problems over the GEMM cliff
/// that are too small to clear it alone — which is precisely where the
/// batched path earns its wall-clock win. The choice can never affect
/// results: every kernel path accumulates in the same per-element
/// order and is bit-identical to the others.
pub fn conv_path_for_batched(
    shape: &ConvShape,
    n: usize,
    h: usize,
    w: usize,
    path: KernelPath,
) -> KernelPath {
    match path {
        KernelPath::Auto => {
            if shape.macs(h, w).saturating_mul(n) >= GEMM_MIN_MACS {
                KernelPath::Gemm
            } else {
                KernelPath::Naive
            }
        }
        forced => forced,
    }
}

/// Reference convolution: plain nested loops with per-element bounds
/// branches. `weight` is `[out_ch][in_ch][ky][kx]` row-major; `out` must
/// be pre-sized to `(out_ch, oh, ow)` and is fully overwritten with the
/// **pre-activation** result (bias included).
pub fn conv2d_naive(
    shape: &ConvShape,
    weight: &[f32],
    bias: &[f32],
    x: &Tensor3,
    out: &mut Tensor3,
) {
    let (oh, ow) = shape.out_size(x.h, x.w);
    assert_eq!(x.c, shape.in_ch, "conv input channels");
    assert_eq!(
        (out.c, out.h, out.w),
        (shape.out_ch, oh, ow),
        "conv out shape"
    );
    let k = shape.ksize;
    for oc in 0..shape.out_ch {
        let b = bias[oc];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = b;
                let iy0 = (oy * shape.stride) as isize - shape.pad as isize;
                let ix0 = (ox * shape.stride) as isize - shape.pad as isize;
                for ic in 0..shape.in_ch {
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= x.h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= x.w as isize {
                                continue;
                            }
                            acc += weight[((oc * shape.in_ch + ic) * k + ky) * k + kx]
                                * x.get(ic, iy as usize, ix as usize);
                        }
                    }
                }
                out.set(oc, oy, ox, acc);
            }
        }
    }
}

/// Fill the im2col matrix for `x`: row `r = (ic·k + ky)·k + kx` holds,
/// at column `oy·ow + ox`, the input value under kernel tap `(ky, kx)`
/// for output position `(oy, ox)` — zero where the tap falls in the
/// padding. `col` must be `in_ch·k² × oh·ow` and zeroed.
fn im2col(shape: &ConvShape, x: &Tensor3, col: &mut [f32]) {
    let (oh, ow) = shape.out_size(x.h, x.w);
    let n = oh * ow;
    let k = shape.ksize;
    debug_assert_eq!(col.len(), shape.in_ch * k * k * n);
    let mut r = 0usize;
    for ic in 0..shape.in_ch {
        let plane = &x.data[ic * x.h * x.w..(ic + 1) * x.h * x.w];
        for ky in 0..k {
            for kx in 0..k {
                im2col_tap(
                    shape,
                    oh,
                    ow,
                    ky,
                    kx,
                    plane,
                    x.h,
                    x.w,
                    &mut col[r * n..(r + 1) * n],
                );
                r += 1;
            }
        }
    }
}

/// Fill the `oh·ow` im2col columns of one kernel tap `(ky, kx)` from one
/// contiguous `h × w` input plane. Shared by [`im2col`] and the batched
/// variant — the fill is a pure copy, so factoring it cannot perturb
/// bits.
#[allow(clippy::too_many_arguments)]
#[inline]
fn im2col_tap(
    shape: &ConvShape,
    oh: usize,
    ow: usize,
    ky: usize,
    kx: usize,
    plane: &[f32],
    h: usize,
    w: usize,
    dst: &mut [f32],
) {
    let s = shape.stride;
    let pad = shape.pad;
    // valid ox range: 0 <= ox·s + kx − pad < w
    let ox_lo = if kx >= pad { 0 } else { (pad - kx).div_ceil(s) };
    let ox_hi = if w + pad > kx {
        ((w + pad - kx - 1) / s + 1).min(ow)
    } else {
        0
    };
    for oy in 0..oh {
        let iy = (oy * s + ky) as isize - pad as isize;
        if iy < 0 || iy >= h as isize {
            continue; // padding row: stays zero
        }
        let x_row = &plane[iy as usize * w..(iy as usize + 1) * w];
        let d_row = &mut dst[oy * ow..oy * ow + ow];
        if s == 1 {
            // contiguous: one slice copy
            let ix_lo = ox_lo + kx - pad;
            d_row[ox_lo..ox_hi].copy_from_slice(&x_row[ix_lo..ix_lo + (ox_hi - ox_lo)]);
        } else {
            for (ox, d) in d_row.iter_mut().enumerate().take(ox_hi).skip(ox_lo) {
                *d = x_row[ox * s + kx - pad];
            }
        }
    }
}

/// Fill the batched im2col matrix: row `r = (ic·k + ky)·k + kx` holds the
/// per-item column blocks side by side — item `i`'s `oh·ow` columns at
/// `[i·oh·ow, (i+1)·oh·ow)`. Because [`BatchTensor3`] output data is laid
/// out the same way (`C × N × H × W`), one GEMM over the widened column
/// dimension computes every item's convolution with exactly the
/// per-item accumulation order. `col` must be `in_ch·k² × n·oh·ow` and
/// zeroed.
fn im2col_batched(shape: &ConvShape, x: &BatchTensor3, col: &mut [f32]) {
    let (oh, ow) = shape.out_size(x.h, x.w);
    let nsp = oh * ow;
    let n = x.n * nsp;
    let k = shape.ksize;
    let plane_len = x.h * x.w;
    debug_assert_eq!(col.len(), shape.in_ch * k * k * n);
    let mut r = 0usize;
    for ic in 0..shape.in_ch {
        for ky in 0..k {
            for kx in 0..k {
                let dst = &mut col[r * n..(r + 1) * n];
                for i in 0..x.n {
                    let plane = &x.data[(ic * x.n + i) * plane_len..][..plane_len];
                    im2col_tap(
                        shape,
                        oh,
                        ow,
                        ky,
                        kx,
                        plane,
                        x.h,
                        x.w,
                        &mut dst[i * nsp..(i + 1) * nsp],
                    );
                }
                r += 1;
            }
        }
    }
}

/// im2col + blocked-GEMM convolution. Same contract as
/// [`conv2d_naive`] (pre-activation output, bias included) and
/// bit-identical to it: the GEMM accumulates taps in the same strictly
/// increasing order the nested loops visit them, and padding taps
/// contribute exact `+ 0.0` terms.
///
/// The im2col matrix lives in the thread-local scratch pool, so the
/// call performs no heap allocation after warm-up.
pub fn conv2d_gemm(
    shape: &ConvShape,
    weight: &[f32],
    bias: &[f32],
    x: &Tensor3,
    out: &mut Tensor3,
) {
    let (oh, ow) = shape.out_size(x.h, x.w);
    assert_eq!(x.c, shape.in_ch, "conv input channels");
    assert_eq!(
        (out.c, out.h, out.w),
        (shape.out_ch, oh, ow),
        "conv out shape"
    );
    let n = oh * ow;
    let kk = shape.in_ch * shape.ksize * shape.ksize;
    let mut col = take_buf(kk * n);
    im2col(shape, x, &mut col);
    for (row, b) in out.data.chunks_exact_mut(n).zip(bias) {
        row.fill(*b);
    }
    matmul_blocked(weight, &col, &mut out.data, shape.out_ch, kk, n);
    put_buf(col);
}

/// Run the selected convolution path into `out` (pre-activation).
pub fn conv2d(
    shape: &ConvShape,
    weight: &[f32],
    bias: &[f32],
    x: &Tensor3,
    out: &mut Tensor3,
    path: KernelPath,
) {
    match conv_path_for(shape, x.h, x.w, path) {
        KernelPath::Gemm => conv2d_gemm(shape, weight, bias, x, out),
        _ => conv2d_naive(shape, weight, bias, x, out),
    }
}

// ---------------------------------------------------------------------------
// batched convolution / matmul
// ---------------------------------------------------------------------------

/// Batched im2col + blocked-GEMM convolution over `x.n` same-shape
/// items: **one** im2col buffer stacking every item's columns and
/// **one** cache-blocked GEMM whose column dimension is
/// `batch · oh · ow`, so the `out_ch × in_ch·k²` weight matrix is
/// streamed once per *batch* instead of once per item.
///
/// Bit-identical to `x.n` separate [`conv2d_gemm`] calls: item `i`
/// occupies columns `[i·oh·ow, (i+1)·oh·ow)` of both the im2col matrix
/// and the output, so each output element accumulates its taps in
/// exactly the per-item order (`p` strictly increasing, bias seeded
/// first). The column-tile split of [`matmul_blocked`] never reorders
/// accumulation, so where chunk boundaries fall is irrelevant to bits.
///
/// `out` must be pre-sized to `(x.n, out_ch, oh, ow)` and is fully
/// overwritten with the pre-activation result.
pub fn conv2d_gemm_batched(
    shape: &ConvShape,
    weight: &[f32],
    bias: &[f32],
    x: &BatchTensor3,
    out: &mut BatchTensor3,
) {
    let (oh, ow) = shape.out_size(x.h, x.w);
    assert_eq!(x.c, shape.in_ch, "conv input channels");
    assert_eq!(
        (out.n, out.c, out.h, out.w),
        (x.n, shape.out_ch, oh, ow),
        "conv out shape"
    );
    if x.n == 0 {
        return;
    }
    let n = x.n * oh * ow;
    let kk = shape.in_ch * shape.ksize * shape.ksize;
    let mut col = take_buf(kk * n);
    im2col_batched(shape, x, &mut col);
    // C×N×H×W layout: each out channel's chunk holds every item's plane
    for (row, b) in out.data.chunks_exact_mut(n).zip(bias) {
        row.fill(*b);
    }
    matmul_blocked(weight, &col, &mut out.data, shape.out_ch, kk, n);
    put_buf(col);
}

/// Run the selected convolution path over a batch (pre-activation).
///
/// `Auto` resolves by **per-item** problem size — the same rule the
/// looped path applies — so a batched forward takes the same kernel per
/// layer as its looped counterpart and stays bit-identical to it. On
/// the naive path items are processed one at a time through scratch
/// tensors (there is nothing to fold; the reference loops already touch
/// each element once).
pub fn conv2d_batched(
    shape: &ConvShape,
    weight: &[f32],
    bias: &[f32],
    x: &BatchTensor3,
    out: &mut BatchTensor3,
    path: KernelPath,
) {
    match conv_path_for_batched(shape, x.n, x.h, x.w, path) {
        KernelPath::Gemm => conv2d_gemm_batched(shape, weight, bias, x, out),
        _ => {
            let (oh, ow) = shape.out_size(x.h, x.w);
            assert_eq!(
                (out.n, out.c, out.h, out.w),
                (x.n, shape.out_ch, oh, ow),
                "conv out shape"
            );
            let mut xi = Tensor3 {
                c: x.c,
                h: x.h,
                w: x.w,
                data: take_buf(x.c * x.h * x.w),
            };
            let mut oi = Tensor3 {
                c: shape.out_ch,
                h: oh,
                w: ow,
                data: take_buf(shape.out_ch * oh * ow),
            };
            for i in 0..x.n {
                x.item_into(i, &mut xi);
                conv2d_naive(shape, weight, bias, &xi, &mut oi);
                out.set_item(i, &oi);
            }
            put_buf(oi.data);
            put_buf(xi.data);
        }
    }
}

/// Batched matmul: for each item `i`, `cs_i[m][n] += Σ_k a[m][k] ·
/// bs_i[k][n]`, where `bs` holds `batch` consecutive `k × n` blocks and
/// `cs` holds `batch` consecutive pre-seeded `m × n` blocks.
///
/// The per-item B matrices are restacked column-wise into one
/// `k × batch·n` scratch matrix (item `i` at columns `[i·n, (i+1)·n)`),
/// the seeded C blocks likewise, and a single [`matmul_blocked`] call
/// runs over the widened column dimension — per-element accumulation
/// order is untouched, so the result is bit-identical to `batch`
/// separate `matmul_blocked` calls. Scratch comes from the thread-local
/// pool: zero heap allocation after warm-up.
pub fn matmul_batched(
    a: &[f32],
    bs: &[f32],
    cs: &mut [f32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "matmul A shape");
    assert_eq!(bs.len(), batch * k * n, "batched matmul B shape");
    assert_eq!(cs.len(), batch * m * n, "batched matmul C shape");
    if batch == 0 || m * k * n == 0 {
        return;
    }
    let bn = batch * n;
    let mut col = take_buf(k * bn);
    for p in 0..k {
        for i in 0..batch {
            col[p * bn + i * n..p * bn + (i + 1) * n]
                .copy_from_slice(&bs[(i * k + p) * n..(i * k + p + 1) * n]);
        }
    }
    let mut out = take_buf(m * bn);
    for r in 0..m {
        for i in 0..batch {
            out[r * bn + i * n..r * bn + (i + 1) * n]
                .copy_from_slice(&cs[(i * m + r) * n..(i * m + r + 1) * n]);
        }
    }
    matmul_blocked(a, &col, &mut out, m, k, bn);
    for r in 0..m {
        for i in 0..batch {
            cs[(i * m + r) * n..(i * m + r + 1) * n]
                .copy_from_slice(&out[r * bn + i * n..r * bn + (i + 1) * n]);
        }
    }
    put_buf(out);
    put_buf(col);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_fill(seed: u64, buf: &mut [f32]) {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for v in buf.iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
        }
    }

    #[test]
    fn gemm_conv_bit_identical_to_naive() {
        for (in_ch, out_ch, k, s, pad, h, w) in [
            (1, 3, 3, 2, 1, 17, 23),
            (3, 6, 3, 2, 1, 12, 9),
            (8, 6, 1, 1, 0, 7, 12),
            (2, 4, 5, 3, 2, 21, 16),
            (1, 1, 3, 1, 0, 3, 3),
        ] {
            let shape = ConvShape {
                in_ch,
                out_ch,
                ksize: k,
                stride: s,
                pad,
            };
            let mut x = Tensor3::zeros(in_ch, h, w);
            lcg_fill(1, &mut x.data);
            let mut weight = vec![0.0; out_ch * in_ch * k * k];
            let mut bias = vec![0.0; out_ch];
            lcg_fill(2, &mut weight);
            lcg_fill(3, &mut bias);
            let (oh, ow) = shape.out_size(h, w);
            let mut a = Tensor3::zeros(out_ch, oh, ow);
            let mut b = Tensor3::zeros(out_ch, oh, ow);
            conv2d_naive(&shape, &weight, &bias, &x, &mut a);
            conv2d_gemm(&shape, &weight, &bias, &x, &mut b);
            assert_eq!(a.data, b.data, "paths diverge at shape {shape:?} {h}x{w}");
        }
    }

    #[test]
    fn blocked_matmul_bit_identical_to_naive() {
        for (m, k, n) in [(3, 9, 300), (5, 40, 1500), (1, 1, 1), (4, 7, 2049)] {
            let mut a = vec![0.0; m * k];
            let mut b = vec![0.0; k * n];
            lcg_fill(7, &mut a);
            lcg_fill(8, &mut b);
            let mut c1 = vec![0.5; m * n];
            let mut c2 = vec![0.5; m * n];
            matmul_naive(&a, &b, &mut c1, m, k, n);
            matmul_blocked(&a, &b, &mut c2, m, k, n);
            assert_eq!(c1, c2, "matmul paths diverge at {m}x{k}x{n}");
        }
    }

    #[test]
    fn matvec_acc_matches_manual_dot() {
        let w = [1.0, 2.0, 3.0, -1.0, 0.5, 4.0];
        let x = [2.0, -1.0, 1.0];
        let mut y = [10.0, 20.0];
        matvec_acc(&w, &x, &mut y);
        assert_eq!(y, [10.0 + 2.0 - 2.0 + 3.0, 20.0 - 2.0 - 0.5 + 4.0]);
    }

    #[test]
    fn auto_path_switches_on_problem_size() {
        let tiny = ConvShape {
            in_ch: 1,
            out_ch: 1,
            ksize: 1,
            stride: 1,
            pad: 0,
        };
        assert_eq!(
            conv_path_for(&tiny, 2, 2, KernelPath::Auto),
            KernelPath::Naive
        );
        let big = ConvShape {
            in_ch: 3,
            out_ch: 6,
            ksize: 3,
            stride: 2,
            pad: 1,
        };
        assert_eq!(
            conv_path_for(&big, 112, 192, KernelPath::Auto),
            KernelPath::Gemm
        );
        assert_eq!(
            conv_path_for(&big, 112, 192, KernelPath::Naive),
            KernelPath::Naive
        );
    }

    #[test]
    fn batched_conv_bit_identical_to_looped_gemm() {
        for (in_ch, out_ch, k, s, pad, h, w, batch) in [
            (1, 3, 3, 2, 1, 17, 23, 4),
            (3, 6, 3, 2, 1, 12, 9, 3),
            (8, 6, 1, 1, 0, 7, 12, 5),
            (2, 4, 5, 3, 2, 21, 16, 2),
            (1, 1, 3, 1, 0, 3, 3, 1),
        ] {
            let shape = ConvShape {
                in_ch,
                out_ch,
                ksize: k,
                stride: s,
                pad,
            };
            let mut items = Vec::new();
            for i in 0..batch {
                let mut x = Tensor3::zeros(in_ch, h, w);
                lcg_fill(100 + i as u64, &mut x.data);
                items.push(x);
            }
            let mut weight = vec![0.0; out_ch * in_ch * k * k];
            let mut bias = vec![0.0; out_ch];
            lcg_fill(2, &mut weight);
            lcg_fill(3, &mut bias);
            let (oh, ow) = shape.out_size(h, w);
            let refs: Vec<&Tensor3> = items.iter().collect();
            let x_b = BatchTensor3::from_items(&refs);
            let mut out_b = BatchTensor3::zeros(batch, out_ch, oh, ow);
            conv2d_gemm_batched(&shape, &weight, &bias, &x_b, &mut out_b);
            let mut got = Tensor3::zeros(out_ch, oh, ow);
            let mut want = Tensor3::zeros(out_ch, oh, ow);
            for (i, x) in items.iter().enumerate() {
                conv2d_gemm(&shape, &weight, &bias, x, &mut want);
                out_b.item_into(i, &mut got);
                assert_eq!(
                    got.data, want.data,
                    "batched conv diverges at item {i}, shape {shape:?} {h}x{w}"
                );
            }
            // the batched Auto dispatcher (stacked-MAC threshold) may
            // pick a different kernel than per-item Auto, but outputs
            // stay bit-identical — every path accumulates identically
            let mut out_d = BatchTensor3::zeros(batch, out_ch, oh, ow);
            conv2d_batched(&shape, &weight, &bias, &x_b, &mut out_d, KernelPath::Auto);
            for (i, x) in items.iter().enumerate() {
                conv2d(&shape, &weight, &bias, x, &mut want, KernelPath::Auto);
                out_d.item_into(i, &mut got);
                assert_eq!(got.data, want.data, "Auto dispatch diverges at item {i}");
            }
        }
    }

    #[test]
    fn batched_matmul_bit_identical_to_looped() {
        for (batch, m, k, n) in [
            (3, 3, 9, 300),
            (2, 5, 40, 700),
            (1, 1, 1, 1),
            (4, 4, 7, 1100),
        ] {
            let mut a = vec![0.0; m * k];
            lcg_fill(7, &mut a);
            let mut bs = vec![0.0; batch * k * n];
            lcg_fill(8, &mut bs);
            let mut cs = vec![0.25; batch * m * n];
            let mut want = cs.clone();
            matmul_batched(&a, &bs, &mut cs, batch, m, k, n);
            for i in 0..batch {
                matmul_blocked(
                    &a,
                    &bs[i * k * n..(i + 1) * k * n],
                    &mut want[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            assert_eq!(cs, want, "batched matmul diverges at {batch}x{m}x{k}x{n}");
        }
    }

    #[test]
    fn scratch_reuses_buffers() {
        let mut s = Scratch::default();
        let b1 = s.take(100);
        let p1 = b1.as_ptr();
        s.put(b1);
        let b2 = s.take(64);
        assert_eq!(b2.as_ptr(), p1, "pool should hand back the same buffer");
        assert!(b2.iter().all(|&v| v == 0.0));
        s.put(b2);
    }
}
