//! Fast numeric kernels: im2col + cache-blocked GEMM convolution,
//! blocked matmul/matvec, and a thread-local scratch arena for
//! zero-allocation inference paths.
//!
//! Every fast kernel here accumulates in **exactly the same order** as
//! its naive reference (`k` strictly increasing per output element, the
//! bias seeded first), so the fast paths are bit-identical to the plain
//! nested loops — the speedup comes from removing per-element bounds
//! checks and branches, streaming over contiguous rows the compiler can
//! vectorize, and blocking for cache reuse, never from re-associating
//! floating-point sums. That property is what lets [`crate::Conv2d`]
//! switch paths by problem size without perturbing training
//! trajectories, and what keeps parallel evaluation byte-identical to
//! sequential evaluation downstream.
//!
//! The naive references stay exported ([`conv2d_naive`],
//! [`matmul_naive`]) as the oracle the proptest equivalence suite and
//! the `kernels` bench bin compare against.

use crate::tensor::Tensor3;
use std::cell::RefCell;

/// A pool of reusable `f32` buffers.
///
/// Inference paths call [`Scratch::take`] for every temporary they
/// need and [`Scratch::put`] the buffer back when done; after the first
/// call at a given set of shapes ("warm-up") the pool serves every
/// request from retained capacity and the path performs no heap
/// allocation. Access goes through the thread-local [`with_scratch`],
/// so `&self` inference stays `Sync` and each evaluation-pool worker
/// warms its own arena.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
}

/// Retained buffers per thread; beyond this, returned buffers are freed.
const SCRATCH_POOL_CAP: usize = 32;

impl Scratch {
    /// Take a zeroed buffer of length `len` from the pool (allocating
    /// only if the pool is empty or every pooled buffer is too small).
    ///
    /// Picks the smallest pooled buffer that already fits `len`, so that
    /// small temporaries never consume the large im2col buffers; when
    /// nothing fits, the largest buffer is grown in place.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, v) in self.pool.iter().enumerate() {
            let cap = v.capacity();
            best = Some(match best {
                None => (i, cap),
                Some((bi, bcap)) => {
                    let better = match (cap >= len, bcap >= len) {
                        (true, true) => cap < bcap,
                        (true, false) => true,
                        (false, true) => false,
                        (false, false) => cap > bcap,
                    };
                    if better {
                        (i, cap)
                    } else {
                        (bi, bcap)
                    }
                }
            });
        }
        let mut v = match best {
            Some((i, _)) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// Return a buffer to the pool for reuse.
    pub fn put(&mut self, v: Vec<f32>) {
        if self.pool.len() < SCRATCH_POOL_CAP && v.capacity() > 0 {
            self.pool.push(v);
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Run `f` with this thread's scratch arena.
///
/// Nested calls are fine as long as inner buffers are taken after (and
/// returned before) outer ones or simply taken in any order — the pool
/// hands out owned `Vec`s, so there is no aliasing to manage.
pub fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Take a zeroed buffer from this thread's scratch pool.
pub fn take_buf(len: usize) -> Vec<f32> {
    with_scratch(|s| s.take(len))
}

/// Return a buffer to this thread's scratch pool.
pub fn put_buf(v: Vec<f32>) {
    with_scratch(|s| s.put(v));
}

// ---------------------------------------------------------------------------
// matvec / matmul
// ---------------------------------------------------------------------------

/// `y[r] += Σ_c w[r][c] · x[c]` for a row-major `rows × cols` matrix.
///
/// Accumulates into whatever `y` already holds (callers seed it with the
/// bias), strictly in increasing-`c` order per row — the same order as a
/// plain nested loop. The zipped-slice form carries no bounds checks in
/// the inner loop.
#[inline]
pub fn matvec_acc(w: &[f32], x: &[f32], y: &mut [f32]) {
    let cols = x.len();
    debug_assert_eq!(w.len(), y.len() * cols, "matvec shape mismatch");
    for (r, yr) in y.iter_mut().enumerate() {
        let row = &w[r * cols..(r + 1) * cols];
        let mut acc = *yr;
        for (wv, xv) in row.iter().zip(x.iter()) {
            acc += wv * xv;
        }
        *yr = acc;
    }
}

/// Naive reference matmul: `c[m][n] = Σ_k a[m][k] · b[k][n]`
/// (row-major, `c` pre-seeded by the caller, e.g. with a bias).
pub fn matmul_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul A shape");
    assert_eq!(b.len(), k * n, "matmul B shape");
    assert_eq!(c.len(), m * n, "matmul C shape");
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Column-tile width for [`matmul_blocked`]: 1024 f32 ≈ 4 KiB per B row,
/// so a full k-strip of B tiles stays L1/L2-resident for typical k.
const GEMM_N_BLOCK: usize = 1024;

/// Cache-blocked matmul: `c[m][n] += Σ_k a[m][k] · b[k][n]`.
///
/// Loop order is `i, jj, p, j` (an axpy over each B-row tile), which
/// keeps every inner access contiguous and accumulates each `c[i][j]`
/// in strictly increasing `p` — bit-identical to [`matmul_naive`].
pub fn matmul_blocked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul A shape");
    assert_eq!(b.len(), k * n, "matmul B shape");
    assert_eq!(c.len(), m * n, "matmul C shape");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        let mut jj = 0;
        while jj < n {
            let jw = GEMM_N_BLOCK.min(n - jj);
            let c_tile = &mut c_row[jj..jj + jw];
            for (p, &av) in a_row.iter().enumerate() {
                let b_tile = &b[p * n + jj..p * n + jj + jw];
                for (cv, bv) in c_tile.iter_mut().zip(b_tile.iter()) {
                    *cv += av * bv;
                }
            }
            jj += jw;
        }
    }
}

// ---------------------------------------------------------------------------
// convolution
// ---------------------------------------------------------------------------

/// Static shape of a 2-D convolution (square kernel, symmetric stride
/// and zero padding), shared by the naive and GEMM paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Square kernel side.
    pub ksize: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on each border.
    pub pad: usize,
}

impl ConvShape {
    /// Output spatial size for an input of `(h, w)`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad).saturating_sub(self.ksize) / self.stride + 1;
        let ow = (w + 2 * self.pad).saturating_sub(self.ksize) / self.stride + 1;
        (oh, ow)
    }

    /// Multiply–accumulates of one forward pass on an `(h, w)` input.
    pub fn macs(&self, h: usize, w: usize) -> usize {
        let (oh, ow) = self.out_size(h, w);
        self.out_ch * self.in_ch * self.ksize * self.ksize * oh * ow
    }
}

/// Which convolution kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPath {
    /// Pick by problem size ([`conv_path_for`]).
    #[default]
    Auto,
    /// The plain nested loops (reference oracle).
    Naive,
    /// im2col + cache-blocked GEMM.
    Gemm,
}

/// MAC threshold above which the GEMM path wins: below this the im2col
/// materialization overhead dominates the branchy-loop savings.
const GEMM_MIN_MACS: usize = 8 * 1024;

/// Resolve [`KernelPath::Auto`] for a given problem size.
pub fn conv_path_for(shape: &ConvShape, h: usize, w: usize, path: KernelPath) -> KernelPath {
    match path {
        KernelPath::Auto => {
            if shape.macs(h, w) >= GEMM_MIN_MACS {
                KernelPath::Gemm
            } else {
                KernelPath::Naive
            }
        }
        forced => forced,
    }
}

/// Reference convolution: plain nested loops with per-element bounds
/// branches. `weight` is `[out_ch][in_ch][ky][kx]` row-major; `out` must
/// be pre-sized to `(out_ch, oh, ow)` and is fully overwritten with the
/// **pre-activation** result (bias included).
pub fn conv2d_naive(
    shape: &ConvShape,
    weight: &[f32],
    bias: &[f32],
    x: &Tensor3,
    out: &mut Tensor3,
) {
    let (oh, ow) = shape.out_size(x.h, x.w);
    assert_eq!(x.c, shape.in_ch, "conv input channels");
    assert_eq!(
        (out.c, out.h, out.w),
        (shape.out_ch, oh, ow),
        "conv out shape"
    );
    let k = shape.ksize;
    for oc in 0..shape.out_ch {
        let b = bias[oc];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = b;
                let iy0 = (oy * shape.stride) as isize - shape.pad as isize;
                let ix0 = (ox * shape.stride) as isize - shape.pad as isize;
                for ic in 0..shape.in_ch {
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= x.h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= x.w as isize {
                                continue;
                            }
                            acc += weight[((oc * shape.in_ch + ic) * k + ky) * k + kx]
                                * x.get(ic, iy as usize, ix as usize);
                        }
                    }
                }
                out.set(oc, oy, ox, acc);
            }
        }
    }
}

/// Fill the im2col matrix for `x`: row `r = (ic·k + ky)·k + kx` holds,
/// at column `oy·ow + ox`, the input value under kernel tap `(ky, kx)`
/// for output position `(oy, ox)` — zero where the tap falls in the
/// padding. `col` must be `in_ch·k² × oh·ow` and zeroed.
fn im2col(shape: &ConvShape, x: &Tensor3, col: &mut [f32]) {
    let (oh, ow) = shape.out_size(x.h, x.w);
    let n = oh * ow;
    let k = shape.ksize;
    let s = shape.stride;
    let pad = shape.pad;
    debug_assert_eq!(col.len(), shape.in_ch * k * k * n);
    let mut r = 0usize;
    for ic in 0..shape.in_ch {
        for ky in 0..k {
            for kx in 0..k {
                let dst = &mut col[r * n..(r + 1) * n];
                // valid ox range: 0 <= ox·s + kx − pad < w
                let ox_lo = if kx >= pad { 0 } else { (pad - kx).div_ceil(s) };
                let ox_hi = if x.w + pad > kx {
                    ((x.w + pad - kx - 1) / s + 1).min(ow)
                } else {
                    0
                };
                for oy in 0..oh {
                    let iy = (oy * s + ky) as isize - pad as isize;
                    if iy < 0 || iy >= x.h as isize {
                        continue; // padding row: stays zero
                    }
                    let x_row = x.row(ic, iy as usize);
                    let d_row = &mut dst[oy * ow..oy * ow + ow];
                    if s == 1 {
                        // contiguous: one slice copy
                        let ix_lo = ox_lo + kx - pad;
                        d_row[ox_lo..ox_hi].copy_from_slice(&x_row[ix_lo..ix_lo + (ox_hi - ox_lo)]);
                    } else {
                        for (ox, d) in d_row.iter_mut().enumerate().take(ox_hi).skip(ox_lo) {
                            *d = x_row[ox * s + kx - pad];
                        }
                    }
                }
                r += 1;
            }
        }
    }
}

/// im2col + blocked-GEMM convolution. Same contract as
/// [`conv2d_naive`] (pre-activation output, bias included) and
/// bit-identical to it: the GEMM accumulates taps in the same strictly
/// increasing order the nested loops visit them, and padding taps
/// contribute exact `+ 0.0` terms.
///
/// The im2col matrix lives in the thread-local scratch pool, so the
/// call performs no heap allocation after warm-up.
pub fn conv2d_gemm(
    shape: &ConvShape,
    weight: &[f32],
    bias: &[f32],
    x: &Tensor3,
    out: &mut Tensor3,
) {
    let (oh, ow) = shape.out_size(x.h, x.w);
    assert_eq!(x.c, shape.in_ch, "conv input channels");
    assert_eq!(
        (out.c, out.h, out.w),
        (shape.out_ch, oh, ow),
        "conv out shape"
    );
    let n = oh * ow;
    let kk = shape.in_ch * shape.ksize * shape.ksize;
    let mut col = take_buf(kk * n);
    im2col(shape, x, &mut col);
    for (row, b) in out.data.chunks_exact_mut(n).zip(bias) {
        row.fill(*b);
    }
    matmul_blocked(weight, &col, &mut out.data, shape.out_ch, kk, n);
    put_buf(col);
}

/// Run the selected convolution path into `out` (pre-activation).
pub fn conv2d(
    shape: &ConvShape,
    weight: &[f32],
    bias: &[f32],
    x: &Tensor3,
    out: &mut Tensor3,
    path: KernelPath,
) {
    match conv_path_for(shape, x.h, x.w, path) {
        KernelPath::Gemm => conv2d_gemm(shape, weight, bias, x, out),
        _ => conv2d_naive(shape, weight, bias, x, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_fill(seed: u64, buf: &mut [f32]) {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for v in buf.iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
        }
    }

    #[test]
    fn gemm_conv_bit_identical_to_naive() {
        for (in_ch, out_ch, k, s, pad, h, w) in [
            (1, 3, 3, 2, 1, 17, 23),
            (3, 6, 3, 2, 1, 12, 9),
            (8, 6, 1, 1, 0, 7, 12),
            (2, 4, 5, 3, 2, 21, 16),
            (1, 1, 3, 1, 0, 3, 3),
        ] {
            let shape = ConvShape {
                in_ch,
                out_ch,
                ksize: k,
                stride: s,
                pad,
            };
            let mut x = Tensor3::zeros(in_ch, h, w);
            lcg_fill(1, &mut x.data);
            let mut weight = vec![0.0; out_ch * in_ch * k * k];
            let mut bias = vec![0.0; out_ch];
            lcg_fill(2, &mut weight);
            lcg_fill(3, &mut bias);
            let (oh, ow) = shape.out_size(h, w);
            let mut a = Tensor3::zeros(out_ch, oh, ow);
            let mut b = Tensor3::zeros(out_ch, oh, ow);
            conv2d_naive(&shape, &weight, &bias, &x, &mut a);
            conv2d_gemm(&shape, &weight, &bias, &x, &mut b);
            assert_eq!(a.data, b.data, "paths diverge at shape {shape:?} {h}x{w}");
        }
    }

    #[test]
    fn blocked_matmul_bit_identical_to_naive() {
        for (m, k, n) in [(3, 9, 300), (5, 40, 1500), (1, 1, 1), (4, 7, 2049)] {
            let mut a = vec![0.0; m * k];
            let mut b = vec![0.0; k * n];
            lcg_fill(7, &mut a);
            lcg_fill(8, &mut b);
            let mut c1 = vec![0.5; m * n];
            let mut c2 = vec![0.5; m * n];
            matmul_naive(&a, &b, &mut c1, m, k, n);
            matmul_blocked(&a, &b, &mut c2, m, k, n);
            assert_eq!(c1, c2, "matmul paths diverge at {m}x{k}x{n}");
        }
    }

    #[test]
    fn matvec_acc_matches_manual_dot() {
        let w = [1.0, 2.0, 3.0, -1.0, 0.5, 4.0];
        let x = [2.0, -1.0, 1.0];
        let mut y = [10.0, 20.0];
        matvec_acc(&w, &x, &mut y);
        assert_eq!(y, [10.0 + 2.0 - 2.0 + 3.0, 20.0 - 2.0 - 0.5 + 4.0]);
    }

    #[test]
    fn auto_path_switches_on_problem_size() {
        let tiny = ConvShape {
            in_ch: 1,
            out_ch: 1,
            ksize: 1,
            stride: 1,
            pad: 0,
        };
        assert_eq!(
            conv_path_for(&tiny, 2, 2, KernelPath::Auto),
            KernelPath::Naive
        );
        let big = ConvShape {
            in_ch: 3,
            out_ch: 6,
            ksize: 3,
            stride: 2,
            pad: 1,
        };
        assert_eq!(
            conv_path_for(&big, 112, 192, KernelPath::Auto),
            KernelPath::Gemm
        );
        assert_eq!(
            conv_path_for(&big, 112, 192, KernelPath::Naive),
            KernelPath::Naive
        );
    }

    #[test]
    fn scratch_reuses_buffers() {
        let mut s = Scratch::default();
        let b1 = s.take(100);
        let p1 = b1.as_ptr();
        s.put(b1);
        let b2 = s.take(64);
        assert_eq!(b2.as_ptr(), p1, "pool should hand back the same buffer");
        assert!(b2.iter().all(|&v| v == 0.0));
        s.put(b2);
    }
}
