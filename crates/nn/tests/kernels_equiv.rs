//! Property-based equivalence suite for the fast kernel layer: the
//! GEMM convolution and blocked matmul must match the naive reference
//! loops to 1e-5 over randomized shapes, strides and paddings (the
//! implementation actually guarantees bit-identity; the tolerance here
//! states the weaker contract the rest of the workspace relies on).
//!
//! The vendored proptest has no `prop_flat_map`, so data arrays are not
//! generated as strategies: each case draws dimensions plus a `u64`
//! seed and fills the arrays with a deterministic LCG.

use otif_nn::kernels::{
    conv2d, conv2d_batched, conv2d_gemm, conv2d_naive, matmul_batched, matmul_blocked,
    matmul_naive, ConvShape, KernelPath,
};
use otif_nn::{BatchTensor3, Tensor3};
use proptest::prelude::*;

fn lcg_fill(seed: u64, buf: &mut [f32]) {
    let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    for v in buf.iter_mut() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
    }
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

proptest! {
    #[test]
    fn gemm_conv_matches_naive(
        chans in ((1usize..5), (1usize..5)),
        geom in ((1usize..5), (1usize..4), (0usize..3)),
        dims in ((1usize..24), (1usize..24)),
        seed in 0u64..u64::MAX,
    ) {
        let (in_ch, out_ch) = chans;
        let (ksize, stride, pad) = geom;
        // guarantee at least one valid output position
        let h = dims.0.max(ksize);
        let w = dims.1.max(ksize);
        let shape = ConvShape { in_ch, out_ch, ksize, stride, pad };

        let mut x = Tensor3::zeros(in_ch, h, w);
        let mut weight = vec![0.0; out_ch * in_ch * ksize * ksize];
        let mut bias = vec![0.0; out_ch];
        lcg_fill(seed, &mut x.data);
        lcg_fill(seed ^ 0xdead_beef, &mut weight);
        lcg_fill(seed ^ 0x5eed_cafe, &mut bias);

        let (oh, ow) = shape.out_size(h, w);
        let mut naive = Tensor3::zeros(out_ch, oh, ow);
        let mut gemm = Tensor3::zeros(out_ch, oh, ow);
        let mut auto = Tensor3::zeros(out_ch, oh, ow);
        conv2d_naive(&shape, &weight, &bias, &x, &mut naive);
        conv2d_gemm(&shape, &weight, &bias, &x, &mut gemm);
        conv2d(&shape, &weight, &bias, &x, &mut auto, KernelPath::Auto);

        let diff = max_abs_diff(&naive.data, &gemm.data);
        prop_assert!(
            diff <= 1e-5,
            "gemm diverges from naive by {diff} at {shape:?} input {h}x{w}"
        );
        // the auto dispatcher must resolve to one of the two paths, not
        // some third behaviour
        prop_assert_eq!(&auto.data, &naive.data);
    }

    #[test]
    fn blocked_matmul_matches_naive(
        m in 1usize..32,
        k in 1usize..48,
        n in 1usize..96,
        c0 in -2.0f32..2.0,
        seed in 0u64..u64::MAX,
    ) {
        let mut a = vec![0.0; m * k];
        let mut b = vec![0.0; k * n];
        lcg_fill(seed, &mut a);
        lcg_fill(seed ^ 0xabcd_ef12, &mut b);
        // both paths accumulate on top of a caller-seeded C
        let mut c_naive = vec![c0; m * n];
        let mut c_blocked = vec![c0; m * n];
        matmul_naive(&a, &b, &mut c_naive, m, k, n);
        matmul_blocked(&a, &b, &mut c_blocked, m, k, n);
        let diff = max_abs_diff(&c_naive, &c_blocked);
        prop_assert!(diff <= 1e-5, "blocked diverges by {diff} at {m}x{k}x{n}");
    }

    #[test]
    fn blocked_matmul_matches_naive_across_column_tiles(
        m in 1usize..4,
        k in 1usize..8,
        extra in 0usize..600,
        seed in 0u64..u64::MAX,
    ) {
        // n spans the 1024-wide tile boundary so multi-tile bookkeeping
        // is exercised, which the small-n property above never reaches
        let n = 900 + extra;
        let mut a = vec![0.0; m * k];
        let mut b = vec![0.0; k * n];
        lcg_fill(seed, &mut a);
        lcg_fill(seed ^ 0x7777_1234, &mut b);
        let mut c_naive = vec![0.0; m * n];
        let mut c_blocked = vec![0.0; m * n];
        matmul_naive(&a, &b, &mut c_naive, m, k, n);
        matmul_blocked(&a, &b, &mut c_blocked, m, k, n);
        prop_assert_eq!(c_naive, c_blocked);
    }

    // The batched convolution must be *bitwise* identical to N looped
    // calls — for every kernel path, every randomized shape and batch
    // size, and regardless of which path runs first (the thread-local
    // scratch pool is reused across calls in whatever order, and its
    // state must never leak into results).
    #[test]
    fn batched_conv_bitwise_equals_looped(
        chans in ((1usize..5), (1usize..5)),
        geom in ((1usize..4), (1usize..3), (0usize..2)),
        dims in ((1usize..16), (1usize..16)),
        batch in 1usize..6,
        path_sel in 0usize..3,
        batched_first in 0usize..2,
        seed in 0u64..u64::MAX,
    ) {
        let (in_ch, out_ch) = chans;
        let (ksize, stride, pad) = geom;
        let h = dims.0.max(ksize);
        let w = dims.1.max(ksize);
        let shape = ConvShape { in_ch, out_ch, ksize, stride, pad };
        let path = [KernelPath::Auto, KernelPath::Naive, KernelPath::Gemm][path_sel];
        let batched_first = batched_first == 1;

        let mut items = Vec::new();
        for i in 0..batch {
            let mut x = Tensor3::zeros(in_ch, h, w);
            lcg_fill(seed.wrapping_add(i as u64), &mut x.data);
            items.push(x);
        }
        let mut weight = vec![0.0; out_ch * in_ch * ksize * ksize];
        let mut bias = vec![0.0; out_ch];
        lcg_fill(seed ^ 0xdead_beef, &mut weight);
        lcg_fill(seed ^ 0x5eed_cafe, &mut bias);

        let (oh, ow) = shape.out_size(h, w);
        let refs: Vec<&Tensor3> = items.iter().collect();
        let xb = BatchTensor3::from_items(&refs);
        let mut out_b = BatchTensor3::zeros(batch, out_ch, oh, ow);
        let mut looped: Vec<Tensor3> = (0..batch).map(|_| Tensor3::zeros(out_ch, oh, ow)).collect();

        let run_looped = |outs: &mut Vec<Tensor3>| {
            for (x, out) in items.iter().zip(outs.iter_mut()) {
                conv2d(&shape, &weight, &bias, x, out, path);
            }
        };
        if batched_first {
            conv2d_batched(&shape, &weight, &bias, &xb, &mut out_b, path);
            run_looped(&mut looped);
        } else {
            run_looped(&mut looped);
            conv2d_batched(&shape, &weight, &bias, &xb, &mut out_b, path);
        }

        let mut got = Tensor3::zeros(0, 0, 0);
        for (i, want) in looped.iter().enumerate() {
            out_b.item_into(i, &mut got);
            let got_bits: Vec<u32> = got.data.iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.data.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(
                got_bits, want_bits,
                "batched conv not bitwise at item {} ({:?}, {:?}, {}x{}, batch {}, batched_first {})",
                i, shape, path, h, w, batch, batched_first
            );
        }
    }

    // Same contract for the batched matmul: one widened GEMM over
    // column-stacked B/C blocks, bitwise-equal to per-item
    // `matmul_blocked` calls in either execution order.
    #[test]
    fn batched_matmul_bitwise_equals_looped(
        m in 1usize..6,
        k in 1usize..12,
        n in 1usize..64,
        batch in 1usize..6,
        batched_first in 0usize..2,
        c0 in -2.0f32..2.0,
        seed in 0u64..u64::MAX,
    ) {
        let batched_first = batched_first == 1;
        let mut a = vec![0.0; m * k];
        lcg_fill(seed, &mut a);
        let mut bs = vec![0.0; batch * k * n];
        lcg_fill(seed ^ 0xabcd_ef12, &mut bs);
        let mut cs = vec![c0; batch * m * n];
        let mut want = cs.clone();

        let run_looped = |want: &mut Vec<f32>| {
            for i in 0..batch {
                matmul_blocked(
                    &a,
                    &bs[i * k * n..(i + 1) * k * n],
                    &mut want[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        };
        if batched_first {
            matmul_batched(&a, &bs, &mut cs, batch, m, k, n);
            run_looped(&mut want);
        } else {
            run_looped(&mut want);
            matmul_batched(&a, &bs, &mut cs, batch, m, k, n);
        }
        let got_bits: Vec<u32> = cs.iter().map(|v| v.to_bits()).collect();
        let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(
            got_bits, want_bits,
            "batched matmul not bitwise at {}x{}x{} batch {} batched_first {}",
            m, k, n, batch, batched_first
        );
    }
}
