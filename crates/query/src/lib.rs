#![warn(missing_docs)]

//! The post-processing query engine over extracted tracks.
//!
//! OTIF's value proposition (§1) is that after tracks are extracted once,
//! *any* query over detections or tracks executes in milliseconds by
//! post-processing the tracks — no further video decoding or ML
//! inference. This crate implements the query families from the paper's
//! evaluation:
//!
//! - **object track queries** (§4.1): track counts per clip (Amsterdam,
//!   Jackson) and path breakdowns — counts of tracks per spatial path
//!   pattern (Caldot1/2, Tokyo, UAV, Warsaw); plus the hard-braking
//!   example query from §3;
//! - **frame-level limit queries** (§4.2): count queries (≥ N objects),
//!   region queries (≥ N objects inside a polygon) and hot-spot queries
//!   (≥ N objects within a circle of radius R), each returning up to
//!   `limit` matching frames at least 5 seconds apart;
//! - the paper's **accuracy metrics**: `1 − |x̂ − x*| / x*` for counts
//!   (averaged over clips and path types) and the fraction of output
//!   frames that truly satisfy the predicate for limit queries.

pub mod aggregate;
pub mod frame_queries;
pub mod metrics;
pub mod track_queries;

pub use aggregate::AggregateQuery;
pub use frame_queries::{ClipMatches, FrameLimitQuery, FrameQueryKind, FrameRef};
pub use metrics::{count_accuracy, mean};
pub use track_queries::{PathPattern, TrackQuery};
