//! The paper's accuracy metrics (§4.1, "Metrics").

/// Count accuracy: `1 − |x̂ − x*| / x*`, clamped to `[0, 1]`.
///
/// When the ground truth is zero, a zero estimate scores 1 and any
/// non-zero estimate scores 0 (the paper averages over 60 clips so the
/// degenerate case needs a convention).
pub fn count_accuracy(estimate: f32, ground_truth: f32) -> f32 {
    if ground_truth <= 0.0 {
        return if estimate <= 0.0 { 1.0 } else { 0.0 };
    }
    (1.0 - (estimate - ground_truth).abs() / ground_truth).clamp(0.0, 1.0)
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_count_scores_one() {
        assert_eq!(count_accuracy(10.0, 10.0), 1.0);
    }

    #[test]
    fn relative_error_reduces_score() {
        assert!((count_accuracy(8.0, 10.0) - 0.8).abs() < 1e-6);
        assert!((count_accuracy(12.0, 10.0) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn large_errors_clamp_at_zero() {
        assert_eq!(count_accuracy(30.0, 10.0), 0.0);
    }

    #[test]
    fn zero_ground_truth_convention() {
        assert_eq!(count_accuracy(0.0, 0.0), 1.0);
        assert_eq!(count_accuracy(3.0, 0.0), 0.0);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
