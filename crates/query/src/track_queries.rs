//! Object track queries (§4.1) plus the hard-braking example from §3.

use crate::metrics::{count_accuracy, mean};
use otif_geom::Polyline;
use otif_sim::{Clip, ObjectClass, SceneSpec};
use otif_track::Track;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A canonical spatial path pattern for path-breakdown queries: tracks
/// are classified to the nearest pattern's polyline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathPattern {
    /// Pattern identifier (e.g. `"north->south"`).
    pub id: String,
    /// Resampled canonical path (N points).
    pub path: Polyline,
}

const PATTERN_N: usize = 20;

impl PathPattern {
    /// Derive patterns from a scene's path graph, merging per-lane
    /// variants (ids that differ only after a `-l` suffix — highway
    /// lanes) into one directional pattern.
    pub fn from_scene(scene: &SceneSpec) -> Vec<PathPattern> {
        let mut groups: HashMap<String, Vec<Polyline>> = HashMap::new();
        for p in &scene.paths {
            let base =
                p.id.split_once("-l")
                    .map(|(b, _)| b.to_string())
                    .unwrap_or_else(|| p.id.clone());
            groups
                .entry(base)
                .or_default()
                .push(p.route.resample(PATTERN_N));
        }
        let mut out: Vec<PathPattern> = groups
            .into_iter()
            .map(|(id, lines)| {
                let refs: Vec<&Polyline> = lines.iter().collect();
                PathPattern {
                    id,
                    path: Polyline::mean(&refs),
                }
            })
            .collect();
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out
    }

    /// Distance from a (possibly partial) track path to this pattern.
    ///
    /// Tracks often cover only part of a pattern — objects enter or leave
    /// at clip boundaries, or are captured at a high sampling gap — so
    /// endpoint-aligned comparison over-penalizes. Instead we use the
    /// *directed chamfer* distance (mean distance from track points to the
    /// nearest pattern points), rejecting tracks that traverse the pattern
    /// in the opposite direction.
    pub fn distance(&self, track_path: &Polyline) -> f32 {
        let tp = track_path.resample(PATTERN_N);
        // nearest pattern index for the track's first and last points
        let nearest_idx = |p: &otif_geom::Point| -> usize {
            let mut best = 0;
            let mut bd = f32::INFINITY;
            for (i, q) in self.path.points.iter().enumerate() {
                let d = p.dist(q);
                if d < bd {
                    bd = d;
                    best = i;
                }
            }
            best
        };
        let i0 = nearest_idx(&tp.first());
        let i1 = nearest_idx(&tp.last());
        if i1 <= i0 && tp.first().dist(&tp.last()) > 1.0 {
            return f32::INFINITY; // wrong direction along the pattern
        }
        let chamfer: f32 = tp
            .points
            .iter()
            .map(|p| {
                self.path
                    .points
                    .iter()
                    .map(|q| p.dist(q))
                    .fold(f32::INFINITY, f32::min)
            })
            .sum::<f32>()
            / tp.points.len() as f32;
        chamfer
    }
}

/// Classify a track to the nearest pattern index, or `None` if no pattern
/// is within `max_dist`.
pub fn classify_track(track: &Track, patterns: &[PathPattern], max_dist: f32) -> Option<usize> {
    if track.len() < 2 {
        return None;
    }
    let path = track.center_polyline().resample(PATTERN_N);
    let mut best: Option<(usize, f32)> = None;
    for (i, p) in patterns.iter().enumerate() {
        let d = p.distance(&path);
        if d <= max_dist && best.map(|(_, bd)| d < bd).unwrap_or(true) {
            best = Some((i, d));
        }
    }
    best.map(|(i, _)| i)
}

/// Object track queries over extracted tracks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TrackQuery {
    /// Number of unique cars per clip (Amsterdam, Jackson).
    Count,
    /// Counts of car tracks per spatial pattern (the other 5 datasets).
    /// `max_dist` is the classification rejection radius in native px.
    PathBreakdown {
        /// Canonical path patterns to count against.
        patterns: Vec<PathPattern>,
        /// Classification rejection radius in native px.
        max_dist: f32,
    },
    /// Cars decelerating by at least `decel` px/s² between consecutive
    /// samples (example query 1 from §3).
    HardBraking {
        /// Minimum deceleration in px/s².
        decel: f32,
    },
}

/// Whether a track counts as a "car" for the paper's queries. Trucks are
/// included: the simulated detector (like COCO models on distant traffic)
/// cannot reliably separate cars from small trucks, and the paper's
/// hand-counts face the same ambiguity.
fn is_car(class: ObjectClass) -> bool {
    matches!(
        class,
        ObjectClass::Car | ObjectClass::Truck | ObjectClass::Bus
    )
}

impl TrackQuery {
    /// A path-breakdown query over a scene's canonical patterns.
    pub fn path_breakdown(scene: &SceneSpec) -> TrackQuery {
        let diag = ((scene.width * scene.width + scene.height * scene.height) as f32).sqrt();
        TrackQuery::PathBreakdown {
            patterns: PathPattern::from_scene(scene),
            max_dist: diag * 0.22,
        }
    }

    /// Execute over one clip's extracted tracks, producing the count
    /// vector the query reports (one entry for `Count`/`HardBraking`,
    /// one per pattern for `PathBreakdown`).
    pub fn run(&self, tracks: &[Track], fps: f32) -> Vec<f32> {
        match self {
            TrackQuery::Count => {
                vec![tracks.iter().filter(|t| is_car(t.class)).count() as f32]
            }
            TrackQuery::PathBreakdown { patterns, max_dist } => {
                let mut counts = vec![0.0; patterns.len()];
                for t in tracks.iter().filter(|t| is_car(t.class)) {
                    if let Some(i) = classify_track(t, patterns, *max_dist) {
                        counts[i] += 1.0;
                    }
                }
                counts
            }
            TrackQuery::HardBraking { decel } => {
                let n = tracks
                    .iter()
                    .filter(|t| is_car(t.class))
                    .filter(|t| {
                        let v = t.interval_speeds(fps);
                        t.dets.windows(2).zip(v.windows(2)).any(|(d, vv)| {
                            let dt = (d[1].0 - d[0].0) as f32 / fps;
                            dt > 0.0 && (vv[0] - vv[1]) / dt >= *decel
                        })
                    })
                    .count();
                vec![n as f32]
            }
        }
    }

    /// Ground-truth counts for one clip.
    pub fn ground_truth(&self, clip: &Clip) -> Vec<f32> {
        let fps = clip.scene.fps as f32;
        match self {
            TrackQuery::Count => {
                vec![clip.gt_tracks.iter().filter(|t| is_car(t.class)).count() as f32]
            }
            TrackQuery::PathBreakdown { patterns, .. } => {
                // ground truth classifies by the *actual* path id
                let mut counts = vec![0.0; patterns.len()];
                for t in clip.gt_tracks.iter().filter(|t| is_car(t.class)) {
                    let base = t
                        .path_id
                        .split_once("-l")
                        .map(|(b, _)| b.to_string())
                        .unwrap_or_else(|| t.path_id.clone());
                    if let Some(i) = patterns.iter().position(|p| p.id == base) {
                        counts[i] += 1.0;
                    }
                }
                counts
            }
            TrackQuery::HardBraking { .. } => {
                let n = clip
                    .gt_tracks
                    .iter()
                    .filter(|t| is_car(t.class) && t.braked_hard)
                    .count();
                let _ = fps;
                vec![n as f32]
            }
        }
    }

    /// The paper's accuracy over a split: percent accuracy averaged over
    /// clips and, for path breakdowns, path types.
    pub fn accuracy(&self, tracks_per_clip: &[Vec<Track>], clips: &[Clip]) -> f32 {
        assert_eq!(tracks_per_clip.len(), clips.len());
        let mut per_clip = Vec::with_capacity(clips.len());
        for (tracks, clip) in tracks_per_clip.iter().zip(clips) {
            let est = self.run(tracks, clip.scene.fps as f32);
            let gt = self.ground_truth(clip);
            let accs: Vec<f32> = est
                .iter()
                .zip(&gt)
                .map(|(e, g)| count_accuracy(*e, *g))
                .collect();
            per_clip.push(mean(&accs));
        }
        mean(&per_clip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_cv::Detection;
    use otif_geom::Rect;
    use otif_sim::{DatasetConfig, DatasetKind};

    fn det(x: f32, y: f32) -> Detection {
        Detection {
            rect: Rect::new(x - 10.0, y - 6.0, 20.0, 12.0),
            class: ObjectClass::Car,
            confidence: 0.9,
            appearance: vec![],
            debug_gt: None,
        }
    }

    fn track(id: u32, pts: &[(usize, f32, f32)]) -> Track {
        let mut t = Track::new(id, ObjectClass::Car);
        for &(f, x, y) in pts {
            t.push(f, det(x, y));
        }
        t
    }

    #[test]
    fn count_query_counts_cars_not_pedestrians() {
        let mut ped = track(3, &[(0, 0.0, 0.0), (5, 10.0, 0.0)]);
        ped.class = ObjectClass::Pedestrian;
        let tracks = vec![
            track(1, &[(0, 0.0, 0.0), (5, 50.0, 0.0)]),
            track(2, &[(0, 0.0, 100.0), (5, 50.0, 100.0)]),
            ped,
        ];
        assert_eq!(TrackQuery::Count.run(&tracks, 10.0), vec![2.0]);
    }

    #[test]
    fn patterns_merge_highway_lanes() {
        let scene = DatasetKind::Caldot1.scene();
        let pats = PathPattern::from_scene(&scene);
        assert_eq!(pats.len(), 2, "caldot lanes merge into 2 directions");
        let ids: Vec<&str> = pats.iter().map(|p| p.id.as_str()).collect();
        assert!(ids.contains(&"west->east"));
        assert!(ids.contains(&"east->west"));
    }

    #[test]
    fn tokyo_patterns_keep_ten_directions() {
        let scene = DatasetKind::Tokyo.scene();
        assert_eq!(PathPattern::from_scene(&scene).len(), 10);
    }

    #[test]
    fn classification_picks_matching_direction() {
        let scene = DatasetKind::Caldot1.scene();
        let pats = PathPattern::from_scene(&scene);
        // a west→east track along y≈123
        let t = track(
            1,
            &[(0, 10.0, 120.0), (10, 150.0, 123.0), (20, 300.0, 126.0)],
        );
        let i = classify_track(&t, &pats, 100.0).expect("classified");
        assert_eq!(pats[i].id, "west->east");
        // reversed direction
        let t = track(2, &[(0, 300.0, 92.0), (10, 150.0, 88.0), (20, 10.0, 84.0)]);
        let i = classify_track(&t, &pats, 100.0).expect("classified");
        assert_eq!(pats[i].id, "east->west");
    }

    #[test]
    fn classification_rejects_far_tracks() {
        let scene = DatasetKind::Caldot1.scene();
        let pats = PathPattern::from_scene(&scene);
        // vertical track unlike either direction
        let t = track(1, &[(0, 200.0, 0.0), (10, 200.0, 220.0)]);
        assert!(classify_track(&t, &pats, 30.0).is_none());
    }

    #[test]
    fn perfect_tracks_give_high_path_breakdown_accuracy() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 51).generate();
        let q = TrackQuery::path_breakdown(&d.scene);
        // feed ground-truth tracks as if they were extracted
        let tracks_per_clip: Vec<Vec<Track>> = d
            .test
            .iter()
            .map(|c| {
                c.gt_tracks
                    .iter()
                    .map(|g| {
                        let mut t = Track::new(g.id, g.class);
                        for (f, r) in &g.states {
                            t.push(*f, det(r.center().x, r.center().y));
                        }
                        t
                    })
                    .collect()
            })
            .collect();
        let acc = q.accuracy(&tracks_per_clip, &d.test);
        assert!(acc > 0.85, "accuracy with perfect tracks = {acc}");
    }

    #[test]
    fn hard_braking_detects_sharp_deceleration() {
        // 100 px/s for 1 s, then crawling: decel ≈ 90 px/s over 1 s
        let braking = track(1, &[(0, 0.0, 0.0), (10, 100.0, 0.0), (20, 110.0, 0.0)]);
        let steady = track(2, &[(0, 0.0, 50.0), (10, 100.0, 50.0), (20, 200.0, 50.0)]);
        let q = TrackQuery::HardBraking { decel: 50.0 };
        assert_eq!(q.run(&[braking, steady], 10.0), vec![1.0]);
    }

    #[test]
    fn ground_truth_hard_braking_uses_sim_flag() {
        let mut d = DatasetConfig::small(DatasetKind::Caldot1, 52);
        d.scale = otif_sim::DatasetScale::TINY;
        let data = d.generate();
        let q = TrackQuery::HardBraking { decel: 50.0 };
        for clip in &data.test {
            let gt = q.ground_truth(clip);
            let braked = clip
                .gt_tracks
                .iter()
                .filter(|t| t.braked_hard && is_car(t.class))
                .count() as f32;
            assert_eq!(gt, vec![braked]);
        }
    }

    #[test]
    fn accuracy_penalizes_overcounting() {
        let d = DatasetConfig::small(DatasetKind::Jackson, 53).generate();
        let q = TrackQuery::Count;
        // doubled tracks: each gt track twice
        let doubled: Vec<Vec<Track>> = d
            .test
            .iter()
            .map(|c| {
                c.gt_tracks
                    .iter()
                    .flat_map(|g| {
                        (0..2u32).map(move |k| {
                            let mut t = Track::new(g.id * 2 + k, g.class);
                            for (f, r) in &g.states {
                                t.push(*f, det(r.center().x, r.center().y));
                            }
                            t
                        })
                    })
                    .collect()
            })
            .collect();
        let exact: Vec<Vec<Track>> = d
            .test
            .iter()
            .map(|c| {
                c.gt_tracks
                    .iter()
                    .map(|g| {
                        let mut t = Track::new(g.id, g.class);
                        for (f, r) in &g.states {
                            t.push(*f, det(r.center().x, r.center().y));
                        }
                        t
                    })
                    .collect()
            })
            .collect();
        assert!(q.accuracy(&doubled, &d.test) < q.accuracy(&exact, &d.test));
    }
}
