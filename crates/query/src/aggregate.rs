//! Aggregate queries over extracted tracks (§3's example queries 3–4).
//!
//! The paper lists, among queries answerable directly from OTIF's tracks:
//! *"find the average number of cars visible in the video over time"* and
//! *"find the average number of unique cars over time (i.e., the traffic
//! volume)"*. BlazeIt optimizes exactly this class of aggregate queries
//! per-query; OTIF answers them by scanning tracks.

use crate::metrics::count_accuracy;
use otif_sim::{Clip, ObjectClass};
use otif_track::Track;
use serde::{Deserialize, Serialize};

fn is_car(class: ObjectClass) -> bool {
    matches!(
        class,
        ObjectClass::Car | ObjectClass::Truck | ObjectClass::Bus
    )
}

/// Aggregate queries over a clip's tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateQuery {
    /// Average number of cars visible per frame.
    AvgVisible,
    /// Unique cars per minute of video (traffic volume).
    TrafficVolume,
    /// Maximum number of cars simultaneously visible.
    PeakOccupancy,
}

impl AggregateQuery {
    /// Evaluate over one clip's extracted tracks.
    pub fn run(&self, tracks: &[Track], num_frames: usize, fps: f32) -> f32 {
        match self {
            AggregateQuery::AvgVisible => {
                if num_frames == 0 {
                    return 0.0;
                }
                // total visible frames across tracks / frames — tracks are
                // interpolated between samples, so a track is "visible"
                // over its whole span
                let visible: usize = tracks
                    .iter()
                    .filter(|t| is_car(t.class))
                    .map(|t| t.last_frame() - t.first_frame() + 1)
                    .sum();
                visible as f32 / num_frames as f32
            }
            AggregateQuery::TrafficVolume => {
                let minutes = num_frames as f32 / fps / 60.0;
                if minutes <= 0.0 {
                    return 0.0;
                }
                tracks.iter().filter(|t| is_car(t.class)).count() as f32 / minutes
            }
            AggregateQuery::PeakOccupancy => {
                let mut peak = 0usize;
                for f in 0..num_frames {
                    let n = tracks
                        .iter()
                        .filter(|t| is_car(t.class) && t.alive_at(f))
                        .count();
                    peak = peak.max(n);
                }
                peak as f32
            }
        }
    }

    /// Ground-truth value for one clip.
    pub fn ground_truth(&self, clip: &Clip) -> f32 {
        match self {
            AggregateQuery::AvgVisible => {
                let visible: usize = clip
                    .frames
                    .iter()
                    .map(|f| f.objs.iter().filter(|o| is_car(o.class)).count())
                    .sum();
                visible as f32 / clip.num_frames().max(1) as f32
            }
            AggregateQuery::TrafficVolume => {
                let minutes = clip.duration_s() / 60.0;
                if minutes <= 0.0 {
                    return 0.0;
                }
                clip.gt_tracks.iter().filter(|t| is_car(t.class)).count() as f32 / minutes
            }
            AggregateQuery::PeakOccupancy => clip
                .frames
                .iter()
                .map(|f| f.objs.iter().filter(|o| is_car(o.class)).count())
                .fold(0, usize::max) as f32,
        }
    }

    /// Count accuracy averaged over clips.
    pub fn accuracy(&self, tracks_per_clip: &[Vec<Track>], clips: &[Clip]) -> f32 {
        assert_eq!(tracks_per_clip.len(), clips.len());
        let accs: Vec<f32> = tracks_per_clip
            .iter()
            .zip(clips)
            .map(|(ts, clip)| {
                let est = self.run(ts, clip.num_frames(), clip.scene.fps as f32);
                count_accuracy(est, self.ground_truth(clip))
            })
            .collect();
        crate::metrics::mean(&accs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_cv::Detection;
    use otif_geom::Rect;
    use otif_sim::{DatasetConfig, DatasetKind};

    fn det(x: f32) -> Detection {
        Detection {
            rect: Rect::new(x, 50.0, 20.0, 12.0),
            class: ObjectClass::Car,
            confidence: 0.9,
            appearance: vec![],
            debug_gt: None,
        }
    }

    fn track(id: u32, first: usize, last: usize) -> Track {
        let mut t = Track::new(id, ObjectClass::Car);
        t.push(first, det(first as f32));
        t.push(last, det(last as f32));
        t
    }

    #[test]
    fn avg_visible_counts_spans() {
        // one track covering all 10 frames, one covering half
        let tracks = vec![track(0, 0, 9), track(1, 0, 4)];
        let v = AggregateQuery::AvgVisible.run(&tracks, 10, 10.0);
        assert!((v - 1.5).abs() < 1e-5);
    }

    #[test]
    fn traffic_volume_per_minute() {
        let tracks = vec![track(0, 0, 9), track(1, 0, 9), track(2, 3, 8)];
        // 600 frames at 10 fps = 1 minute
        let v = AggregateQuery::TrafficVolume.run(&tracks, 600, 10.0);
        assert!((v - 3.0).abs() < 1e-5);
    }

    #[test]
    fn peak_occupancy_finds_max_overlap() {
        let tracks = vec![track(0, 0, 5), track(1, 3, 9), track(2, 4, 6)];
        let v = AggregateQuery::PeakOccupancy.run(&tracks, 10, 10.0);
        assert_eq!(v, 3.0); // frames 4-5 have all three alive
    }

    #[test]
    fn ground_truth_consistent_with_perfect_tracks() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 77).generate();
        let clip = &d.test[0];
        let perfect: Vec<Track> = clip
            .gt_tracks
            .iter()
            .map(|g| {
                let mut t = Track::new(g.id, g.class);
                for (f, r) in &g.states {
                    t.push(
                        *f,
                        Detection {
                            rect: *r,
                            class: g.class,
                            confidence: 0.9,
                            appearance: vec![],
                            debug_gt: None,
                        },
                    );
                }
                t
            })
            .collect();
        for q in [
            AggregateQuery::AvgVisible,
            AggregateQuery::TrafficVolume,
            AggregateQuery::PeakOccupancy,
        ] {
            let est = q.run(&perfect, clip.num_frames(), clip.scene.fps as f32);
            let gt = q.ground_truth(clip);
            assert!(
                count_accuracy(est, gt) > 0.85,
                "{q:?}: est {est} vs gt {gt}"
            );
        }
    }

    #[test]
    fn accuracy_over_split() {
        let d = DatasetConfig::small(DatasetKind::Jackson, 78).generate();
        let perfect: Vec<Vec<Track>> = d
            .test
            .iter()
            .map(|clip| {
                clip.gt_tracks
                    .iter()
                    .map(|g| {
                        let mut t = Track::new(g.id, g.class);
                        for (f, r) in &g.states {
                            t.push(
                                *f,
                                Detection {
                                    rect: *r,
                                    class: g.class,
                                    confidence: 0.9,
                                    appearance: vec![],
                                    debug_gt: None,
                                },
                            );
                        }
                        t
                    })
                    .collect()
            })
            .collect();
        let acc = AggregateQuery::TrafficVolume.accuracy(&perfect, &d.test);
        assert!(acc > 0.9, "volume accuracy with perfect tracks {acc}");
    }
}
