//! Frame-level limit queries (§4.2).
//!
//! Count / region / hot-spot queries select video frames whose objects
//! satisfy a predicate, returning up to `limit` frames at least 5 seconds
//! apart. OTIF answers them by post-processing extracted tracks: object
//! positions at arbitrary frames are interpolated from track detections
//! (no decoding or inference), and candidate frames are ranked by the
//! minimum duration of the visible tracks, as in §4.2's execution
//! details.

use otif_geom::{Point, Polygon};
use otif_sim::{Clip, ObjectClass};
use otif_track::Track;
use serde::{Deserialize, Serialize};

/// The predicate of a frame-level query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FrameQueryKind {
    /// At least `n` objects anywhere in the frame (UAV, Tokyo).
    Count,
    /// At least `n` objects inside the polygon (Jackson, Caldot1).
    Region(Polygon),
    /// At least `n` objects within a circle of radius `radius` around
    /// some object (Warsaw, Amsterdam).
    HotSpot {
        /// Cluster radius in native px.
        radius: f32,
    },
}

/// A frame-level limit query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameLimitQuery {
    /// The predicate.
    pub kind: FrameQueryKind,
    /// Minimum number of objects satisfying the predicate.
    pub n: usize,
    /// Desired output cardinality (the paper uses 25 or 50).
    pub limit: usize,
    /// Minimum separation between output frames in seconds (paper: 5 s).
    pub min_separation_s: f32,
}

/// A query output: a clip and frame index ("clip filename and
/// timestamp").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameRef {
    /// Clip index within the split.
    pub clip: usize,
    /// Frame index within the clip.
    pub frame: usize,
}

/// One clip's contribution to a frame-limit query: the clip id, its
/// frame rate, and the `(min_track_duration, frame)` matches from
/// [`FrameLimitQuery::clip_matches`].
pub type ClipMatches = (usize, f32, Vec<(usize, usize)>);

fn is_car(class: ObjectClass) -> bool {
    matches!(
        class,
        ObjectClass::Car | ObjectClass::Truck | ObjectClass::Bus
    )
}

impl FrameLimitQuery {
    /// Does a set of object positions satisfy the predicate?
    pub fn positions_match(&self, positions: &[Point]) -> bool {
        match &self.kind {
            FrameQueryKind::Count => positions.len() >= self.n,
            FrameQueryKind::Region(poly) => {
                positions.iter().filter(|p| poly.contains(p)).count() >= self.n
            }
            FrameQueryKind::HotSpot { radius } => positions
                .iter()
                .any(|c| positions.iter().filter(|p| p.dist(c) <= *radius).count() >= self.n),
        }
    }

    /// Car positions visible at `frame` according to extracted tracks
    /// (interpolated between sampled detections), with the duration (in
    /// frames) of each contributing track.
    fn track_positions(tracks: &[Track], frame: usize) -> (Vec<Point>, usize) {
        let mut pts = Vec::new();
        let mut min_duration = usize::MAX;
        for t in tracks.iter().filter(|t| is_car(t.class)) {
            if let Some(p) = t.center_at(frame) {
                pts.push(p);
                min_duration = min_duration.min(t.last_frame() - t.first_frame());
            }
        }
        if pts.is_empty() {
            min_duration = 0;
        }
        (pts, min_duration)
    }

    /// Matching frames of one clip, as `(min visible-track duration,
    /// frame)` in frame order. This is the per-clip half of
    /// [`execute_on_tracks`](Self::execute_on_tracks): it depends only on
    /// the clip's own tracks and frame count, so clips can be evaluated
    /// independently (in parallel, or skipped entirely when an index
    /// proves no frame can match) and merged with
    /// [`select_frames`](Self::select_frames).
    pub fn clip_matches(&self, tracks: &[Track], num_frames: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for f in 0..num_frames {
            let (pts, min_dur) = Self::track_positions(tracks, f);
            if self.positions_match(&pts) {
                out.push((min_dur, f));
            }
        }
        out
    }

    /// The cross-clip half of [`execute_on_tracks`](Self::execute_on_tracks):
    /// merge per-clip match lists (each tagged with its clip id and frame
    /// rate) into the final ranked, separation-constrained output.
    ///
    /// `per_clip` entries must be in ascending clip-id order with frames
    /// in ascending order (as produced by
    /// [`clip_matches`](Self::clip_matches)); clips with no possible
    /// matches may simply be absent — the output is identical to passing
    /// them with empty match lists.
    pub fn select_frames(&self, per_clip: &[ClipMatches]) -> Vec<FrameRef> {
        let mut matches: Vec<(usize, f32, FrameRef)> = Vec::new(); // (min_dur, fps, ref)
        for (clip, fps, ms) in per_clip {
            for (min_dur, frame) in ms {
                matches.push((
                    *min_dur,
                    *fps,
                    FrameRef {
                        clip: *clip,
                        frame: *frame,
                    },
                ));
            }
        }
        // highest minimum duration first
        matches.sort_by(|a, b| b.0.cmp(&a.0).then(a.2.clip.cmp(&b.2.clip)));

        let mut out: Vec<FrameRef> = Vec::new();
        for (_, fps, r) in matches {
            if out.len() >= self.limit {
                break;
            }
            let sep = (self.min_separation_s * fps) as usize;
            let conflict = out
                .iter()
                .any(|o| o.clip == r.clip && o.frame.abs_diff(r.frame) < sep);
            if !conflict {
                out.push(r);
            }
        }
        out
    }

    /// Execute over extracted tracks: returns up to `limit` matching
    /// frames, each at least `min_separation_s` apart within a clip,
    /// ranked by the minimum visible-track duration (frames supported by
    /// long tracks are least likely to be detector noise, §4.2).
    pub fn execute_on_tracks(
        &self,
        tracks_per_clip: &[Vec<Track>],
        clips: &[Clip],
    ) -> Vec<FrameRef> {
        let per_clip: Vec<ClipMatches> = tracks_per_clip
            .iter()
            .zip(clips)
            .enumerate()
            .map(|(ci, (tracks, clip))| {
                (
                    ci,
                    clip.scene.fps as f32,
                    self.clip_matches(tracks, clip.num_frames()),
                )
            })
            .collect();
        self.select_frames(&per_clip)
    }

    /// Ground-truth check: does the frame actually satisfy the predicate
    /// (per the simulator's exact object positions)?
    pub fn frame_matches_gt(&self, clip: &Clip, frame: usize) -> bool {
        let pts: Vec<Point> = clip.frames[frame]
            .objs
            .iter()
            .filter(|o| is_car(o.class))
            .map(|o| o.rect.center())
            .collect();
        self.positions_match(&pts)
    }

    /// All ground-truth matching frames in a split (for sizing query
    /// parameters).
    pub fn gt_matching_frames(&self, clips: &[Clip]) -> Vec<FrameRef> {
        let mut out = Vec::new();
        for (ci, clip) in clips.iter().enumerate() {
            for f in 0..clip.num_frames() {
                if self.frame_matches_gt(clip, f) {
                    out.push(FrameRef { clip: ci, frame: f });
                }
            }
        }
        out
    }

    /// The paper's limit-query accuracy: fraction of output frames that
    /// satisfy the query under ground truth. Empty output scores 0
    /// when matches exist.
    pub fn accuracy(&self, outputs: &[FrameRef], clips: &[Clip]) -> f32 {
        if outputs.is_empty() {
            return if self.gt_matching_frames(clips).is_empty() {
                1.0
            } else {
                0.0
            };
        }
        let good = outputs
            .iter()
            .filter(|r| self.frame_matches_gt(&clips[r.clip], r.frame))
            .count();
        good as f32 / outputs.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_cv::Detection;
    use otif_geom::Rect;
    use otif_sim::{DatasetConfig, DatasetKind};

    fn det(x: f32, y: f32) -> Detection {
        Detection {
            rect: Rect::new(x - 10.0, y - 6.0, 20.0, 12.0),
            class: ObjectClass::Car,
            confidence: 0.9,
            appearance: vec![],
            debug_gt: None,
        }
    }

    fn gt_as_tracks(clips: &[Clip]) -> Vec<Vec<Track>> {
        clips
            .iter()
            .map(|c| {
                c.gt_tracks
                    .iter()
                    .map(|g| {
                        let mut t = Track::new(g.id, g.class);
                        for (f, r) in &g.states {
                            t.push(*f, det(r.center().x, r.center().y));
                        }
                        t
                    })
                    .collect()
            })
            .collect()
    }

    fn count_query(n: usize, limit: usize) -> FrameLimitQuery {
        FrameLimitQuery {
            kind: FrameQueryKind::Count,
            n,
            limit,
            min_separation_s: 5.0,
        }
    }

    #[test]
    fn count_predicate() {
        let q = count_query(2, 10);
        assert!(!q.positions_match(&[Point::new(0.0, 0.0)]));
        assert!(q.positions_match(&[Point::new(0.0, 0.0), Point::new(5.0, 5.0)]));
    }

    #[test]
    fn region_predicate() {
        let q = FrameLimitQuery {
            kind: FrameQueryKind::Region(Polygon::from_rect(&Rect::new(0.0, 0.0, 50.0, 50.0))),
            n: 1,
            limit: 10,
            min_separation_s: 5.0,
        };
        assert!(q.positions_match(&[Point::new(25.0, 25.0)]));
        assert!(!q.positions_match(&[Point::new(100.0, 100.0)]));
    }

    #[test]
    fn hotspot_predicate_requires_clustered_objects() {
        let q = FrameLimitQuery {
            kind: FrameQueryKind::HotSpot { radius: 20.0 },
            n: 3,
            limit: 10,
            min_separation_s: 5.0,
        };
        // 3 clustered
        assert!(q.positions_match(&[
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
        ]));
        // 3 spread out
        assert!(!q.positions_match(&[
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(0.0, 100.0),
        ]));
    }

    #[test]
    fn execute_respects_limit_and_separation() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 61).generate();
        let tracks = gt_as_tracks(&d.test);
        let q = count_query(1, 3);
        let out = q.execute_on_tracks(&tracks, &d.test);
        assert!(out.len() <= 3);
        // separation within each clip
        for a in &out {
            for b in &out {
                if a != b && a.clip == b.clip {
                    let sep = (5.0 * d.test[a.clip].scene.fps as f32) as usize;
                    assert!(a.frame.abs_diff(b.frame) >= sep);
                }
            }
        }
    }

    #[test]
    fn perfect_tracks_give_high_accuracy() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 62).generate();
        let tracks = gt_as_tracks(&d.test);
        let q = count_query(2, 10);
        let out = q.execute_on_tracks(&tracks, &d.test);
        assert!(!out.is_empty(), "busy highway should have ≥2-car frames");
        let acc = q.accuracy(&out, &d.test);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn accuracy_zero_when_results_missing_but_matches_exist() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 63).generate();
        let q = count_query(1, 10);
        assert!(!q.gt_matching_frames(&d.test).is_empty());
        assert_eq!(q.accuracy(&[], &d.test), 0.0);
    }

    #[test]
    fn impossible_query_with_empty_output_is_perfect() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 64).generate();
        let q = count_query(1000, 10);
        assert!(q.gt_matching_frames(&d.test).is_empty());
        assert_eq!(q.accuracy(&[], &d.test), 1.0);
    }

    #[test]
    fn interpolated_positions_used_between_samples() {
        // a track sampled at frames 0 and 10 must still support frame 5
        let mut t = Track::new(0, ObjectClass::Car);
        t.push(0, det(0.0, 0.0));
        t.push(10, det(100.0, 0.0));
        let (pts, _) = FrameLimitQuery::track_positions(&[t], 5);
        assert_eq!(pts.len(), 1);
        assert!((pts[0].x - 50.0).abs() < 1e-4);
    }
}
