//! Byte-identity of parallel evaluation: the work-stealing pool must be
//! an invisible optimization. The tuner's Θ curve and the pipeline's
//! cost ledger are compared **bitwise** (`f32::to_bits` /
//! `f64::to_bits`) between a single-threaded and a multi-threaded run —
//! any re-association of floating-point sums or order-dependent
//! reduction would fail these tests on the last ulp.

use otif_core::config::{OtifConfig, TrackerKind};
use otif_core::pipeline::{ExecutionContext, Pipeline};
use otif_core::tuner::{CurvePoint, Tuner, TunerOptions};
use otif_cv::{CostLedger, CostModel, DetectorArch, DetectorConfig};
use otif_sim::{Clip, DatasetConfig, DatasetKind};
use otif_track::Track;

fn count_metric(clips: &[Clip]) -> impl Fn(&[Vec<Track>]) -> f32 + Sync + '_ {
    move |tracks: &[Vec<Track>]| {
        let mut acc = 0.0;
        for (i, ts) in tracks.iter().enumerate() {
            let gt = clips[i].gt_tracks.len() as f32;
            let got = ts.len() as f32;
            if gt > 0.0 {
                acc += (1.0 - (got - gt).abs() / gt).max(0.0);
            }
        }
        acc / tracks.len().max(1) as f32
    }
}

fn theta_best() -> OtifConfig {
    OtifConfig {
        detector: DetectorConfig::new(DetectorArch::YoloV3, 1.0),
        proxy: None,
        gap: 1,
        tracker: TrackerKind::Sort,
        refine: false,
    }
}

fn tune_with_threads(threads: usize) -> (Vec<CurvePoint>, f64) {
    let d = DatasetConfig::small(DatasetKind::Caldot1, 33).generate();
    let ctx = ExecutionContext::bare(CostModel::default(), 4);
    let metric = count_metric(&d.val);
    let options = TunerOptions {
        threads,
        ..TunerOptions::default()
    };
    let mut tuner = Tuner::new(&ctx, &d.val, &theta_best(), &metric, options);
    let curve = tuner.tune(theta_best(), &metric);
    (curve, tuner.tuning_seconds)
}

#[test]
fn parallel_tuner_curve_is_byte_identical_to_sequential() {
    let (seq, seq_secs) = tune_with_threads(1);
    let (par, par_secs) = tune_with_threads(4);
    assert_eq!(seq.len(), par.len(), "curve lengths differ");
    for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(a.config, b.config, "config differs at point {i}");
        assert_eq!(
            a.accuracy.to_bits(),
            b.accuracy.to_bits(),
            "accuracy differs at point {i}: {} vs {}",
            a.accuracy,
            b.accuracy
        );
        assert_eq!(
            a.val_seconds.to_bits(),
            b.val_seconds.to_bits(),
            "val_seconds differs at point {i}: {} vs {}",
            a.val_seconds,
            b.val_seconds
        );
    }
    assert_eq!(
        seq_secs.to_bits(),
        par_secs.to_bits(),
        "tuning_seconds differs: {seq_secs} vs {par_secs}"
    );
}

#[test]
fn run_split_ledger_is_byte_identical_across_thread_counts() {
    let d = DatasetConfig::small(DatasetKind::Caldot2, 11).generate();
    let ctx = ExecutionContext::bare(CostModel::default(), 3);
    let cfg = theta_best();

    let run = |threads: &str| {
        std::env::set_var("OTIF_EVAL_THREADS", threads);
        let ledger = CostLedger::new();
        let tracks = Pipeline::run_split(&cfg, &ctx, &d.test, &ledger);
        std::env::remove_var("OTIF_EVAL_THREADS");
        (tracks, ledger)
    };
    let (tracks_seq, ledger_seq) = run("1");
    let (tracks_par, ledger_par) = run("4");

    assert_eq!(tracks_seq.len(), tracks_par.len());
    for (a, b) in tracks_seq.iter().zip(&tracks_par) {
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.iter().zip(b) {
            assert_eq!(ta.id, tb.id);
            assert_eq!(ta.dets.len(), tb.dets.len());
        }
    }
    assert_eq!(
        ledger_seq.total().to_bits(),
        ledger_par.total().to_bits(),
        "ledger totals differ: {} vs {}",
        ledger_seq.total(),
        ledger_par.total()
    );
    assert_eq!(
        ledger_seq.execution_total().to_bits(),
        ledger_par.execution_total().to_bits()
    );
    let ba = ledger_seq.breakdown();
    let bb = ledger_par.breakdown();
    assert_eq!(ba.len(), bb.len());
    for ((ca, va), (cb, vb)) in ba.iter().zip(&bb) {
        assert_eq!(ca, cb);
        assert_eq!(va.to_bits(), vb.to_bits(), "{ca:?}: {va} vs {vb}");
    }
}
