//! Ahead-of-time selection of the fixed detector window sizes `W`
//! (§3.3, "Determining Fixed Set of Window Sizes").
//!
//! GPU detectors are efficient only when batching equal-size inputs, so
//! OTIF pre-selects `k` window sizes (k = 3, bounded by GPU memory) and
//! initializes the detector at each. The optimal set minimizes the
//! expected per-frame detector time assuming a perfect proxy (positive
//! cells = detection locations):
//! `W* = argmin_W Σ_t est(R*(I_t; W))`.
//!
//! A greedy algorithm starts with `W = {full frame}` (so falling back to
//! the whole frame is always possible) and repeatedly adds the candidate
//! size that most reduces the summed estimate.

use crate::grouping::group_cells;
use otif_geom::Rect;
use serde::{Deserialize, Serialize};

/// The fixed window sizes and their per-window execution-time model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSet {
    /// Native frame width in pixels.
    pub frame_w: f32,
    /// Native frame height in pixels.
    pub frame_h: f32,
    /// Window sizes (native px); always contains `(frame_w, frame_h)`.
    pub sizes: Vec<(f32, f32)>,
    /// Detector GPU seconds per (scaled) input pixel.
    pub per_px: f64,
    /// Per-invocation launch overhead, amortized across a batch; charged
    /// fractionally per window in the estimate.
    pub per_call: f64,
}

impl WindowSet {
    /// Build a window set, always including the full-frame size.
    pub fn new(
        frame_w: f32,
        frame_h: f32,
        mut sizes: Vec<(f32, f32)>,
        per_px: f64,
        per_call: f64,
    ) -> Self {
        if !sizes.iter().any(|&(w, h)| w == frame_w && h == frame_h) {
            sizes.insert(0, (frame_w, frame_h));
        }
        WindowSet {
            frame_w,
            frame_h,
            sizes,
            per_px,
            per_call,
        }
    }

    /// `T_{w,h}`: estimated detector time for one window of this size
    /// (batched — a small share of the launch overhead).
    pub fn window_time(&self, w: f32, h: f32) -> f64 {
        (w as f64) * (h as f64) * self.per_px + self.per_call * 0.25
    }

    /// Just the full-frame size (the k = 1 ablation in Figure 7).
    pub fn full_frame_only(frame_w: f32, frame_h: f32, per_px: f64, per_call: f64) -> Self {
        WindowSet::new(frame_w, frame_h, vec![(frame_w, frame_h)], per_px, per_call)
    }
}

/// Candidate window sizes: the cell-aligned lattice of sizes between one
/// cell and the full frame.
fn candidate_sizes(frame_w: f32, frame_h: f32) -> Vec<(f32, f32)> {
    let mut out = Vec::new();
    let steps_w = (frame_w / 32.0) as usize;
    let steps_h = (frame_h / 32.0) as usize;
    // geometric-ish subset of the lattice keeps the greedy search cheap
    let picks = |n: usize| -> Vec<usize> {
        let mut v: Vec<usize> = vec![1, 2, 3, 4, 6, 8, 12, 16, 20]
            .into_iter()
            .filter(|&x| x <= n)
            .collect();
        if !v.contains(&n) {
            v.push(n);
        }
        v
    };
    for &cw in &picks(steps_w) {
        for &ch in &picks(steps_h) {
            out.push(((cw * 32) as f32, (ch * 32) as f32));
        }
    }
    out
}

/// Greedily select `k` window sizes minimizing the summed per-frame
/// estimate over sample frames.
///
/// `frames_cells` holds, per sampled frame, the positive cells that a
/// perfect proxy would produce (cells intersecting θ_best detections).
pub fn select_window_sizes(
    frame_w: f32,
    frame_h: f32,
    frames_cells: &[Vec<(usize, usize)>],
    k: usize,
    per_px: f64,
    per_call: f64,
) -> WindowSet {
    assert!(k >= 1);
    let mut ws = WindowSet::full_frame_only(frame_w, frame_h, per_px, per_call);
    let est_total = |ws: &WindowSet| -> f64 {
        frames_cells
            .iter()
            .map(|cells| {
                group_cells(cells, ws)
                    .iter()
                    .map(|r| ws.window_time(r.w, r.h))
                    .sum::<f64>()
            })
            .sum()
    };
    let candidates = candidate_sizes(frame_w, frame_h);
    let mut cur = est_total(&ws);
    while ws.sizes.len() < k {
        let mut best: Option<(usize, f64)> = None;
        for (ci, &cand) in candidates.iter().enumerate() {
            if ws.sizes.contains(&cand) {
                continue;
            }
            let mut trial = ws.clone();
            trial.sizes.push(cand);
            let e = est_total(&trial);
            if e < cur - 1e-12 && best.map(|(_, b)| e < b).unwrap_or(true) {
                best = Some((ci, e));
            }
        }
        match best {
            Some((ci, e)) => {
                ws.sizes.push(candidates[ci]);
                cur = e;
            }
            None => break, // no candidate helps further
        }
    }
    ws
}

/// Convert θ_best detections in a frame into the positive cells a perfect
/// proxy would output.
pub fn cells_of_rects(rects: &[Rect], frame_w: f32, frame_h: f32) -> Vec<(usize, usize)> {
    let cols = (frame_w / 32.0) as usize;
    let rows = (frame_h / 32.0) as usize;
    let mut out = std::collections::BTreeSet::new();
    for r in rects {
        let cx0 = (r.x / 32.0).floor().max(0.0) as usize;
        let cy0 = (r.y / 32.0).floor().max(0.0) as usize;
        let cx1 = ((r.x1() / 32.0).ceil() as usize).min(cols);
        let cy1 = ((r.y1() / 32.0).ceil() as usize).min(rows);
        for cy in cy0..cy1 {
            for cx in cx0..cx1 {
                out.insert((cx, cy));
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PPX: f64 = 6.2e-8;
    const PC: f64 = 8.0e-4;

    #[test]
    fn full_frame_always_in_set() {
        let ws = select_window_sizes(384.0, 224.0, &[], 3, PPX, PC);
        assert!(ws.sizes.contains(&(384.0, 224.0)));
    }

    #[test]
    fn sparse_scenes_get_small_windows() {
        // objects always in a single cell at varying positions
        let frames: Vec<Vec<(usize, usize)>> =
            (0..20).map(|i| vec![((i * 3) % 12, (i * 2) % 7)]).collect();
        let ws = select_window_sizes(384.0, 224.0, &frames, 3, PPX, PC);
        // greedy stops early if no further size helps; at least one small
        // size must have been added for single-cell objects
        assert!(ws.sizes.len() >= 2 && ws.sizes.len() <= 3);
        // the added sizes should be much smaller than the frame
        let small = ws
            .sizes
            .iter()
            .filter(|&&(w, h)| w * h < 384.0 * 224.0 / 4.0)
            .count();
        assert!(small >= 1, "sizes = {:?}", ws.sizes);
    }

    #[test]
    fn selection_reduces_estimated_cost() {
        let frames: Vec<Vec<(usize, usize)>> = (0..20)
            .map(|i| {
                vec![
                    ((i * 3) % 12, (i * 2) % 7),
                    (((i * 5) + 3) % 12, ((i * 3) + 1) % 7),
                ]
            })
            .collect();
        let est = |ws: &WindowSet| -> f64 {
            frames
                .iter()
                .map(|c| {
                    group_cells(c, ws)
                        .iter()
                        .map(|r| ws.window_time(r.w, r.h))
                        .sum::<f64>()
                })
                .sum()
        };
        let k1 = WindowSet::full_frame_only(384.0, 224.0, PPX, PC);
        let k3 = select_window_sizes(384.0, 224.0, &frames, 3, PPX, PC);
        assert!(
            est(&k3) < est(&k1) * 0.6,
            "k3 {} vs k1 {}",
            est(&k3),
            est(&k1)
        );
    }

    #[test]
    fn more_sizes_never_hurt() {
        let frames: Vec<Vec<(usize, usize)>> = (0..15)
            .map(|i| vec![((i * 3) % 12, (i * 2) % 7), ((i * 7) % 12, (i * 5) % 7)])
            .collect();
        let est = |ws: &WindowSet| -> f64 {
            frames
                .iter()
                .map(|c| {
                    group_cells(c, ws)
                        .iter()
                        .map(|r| ws.window_time(r.w, r.h))
                        .sum::<f64>()
                })
                .sum()
        };
        let k2 = select_window_sizes(384.0, 224.0, &frames, 2, PPX, PC);
        let k3 = select_window_sizes(384.0, 224.0, &frames, 3, PPX, PC);
        let k4 = select_window_sizes(384.0, 224.0, &frames, 4, PPX, PC);
        assert!(est(&k3) <= est(&k2) + 1e-12);
        assert!(est(&k4) <= est(&k3) + 1e-12);
    }

    #[test]
    fn cells_of_rects_basic() {
        let cells = cells_of_rects(&[Rect::new(30.0, 30.0, 10.0, 10.0)], 384.0, 224.0);
        // box straddles cells (0,0),(1,0),(0,1),(1,1)
        assert_eq!(cells.len(), 4);
        assert!(cells.contains(&(0, 0)));
        assert!(cells.contains(&(1, 1)));
    }

    #[test]
    fn empty_frames_keep_full_frame_only() {
        let frames: Vec<Vec<(usize, usize)>> = vec![vec![]; 5];
        let ws = select_window_sizes(384.0, 224.0, &frames, 3, PPX, PC);
        // nothing to optimize: no candidate reduces cost, so only the
        // mandatory full-frame size remains
        assert_eq!(ws.sizes.len(), 1);
    }
}
