//! Grouping positive cells into detector windows (§3.3, "Grouping Cells
//! during Execution").
//!
//! Given the set of positive cells from the proxy model and a fixed set of
//! window sizes `W` with per-size detector execution times `T_{w,h}`, find
//! a set of rectangles (sized from `W`) covering all positive cells with
//! an (approximately) minimal estimated execution time `est(R) = Σ T`.
//!
//! Implementation follows the paper: initialize one cluster per connected
//! component of positive cells, then greedily merge cluster pairs whenever
//! the merge lowers `est(R)`; fall back to the whole frame when that is
//! cheaper.

use crate::windows::WindowSet;
use otif_geom::Rect;

/// A cluster of positive cells tracked by its cell-space bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cluster {
    cx0: usize,
    cy0: usize,
    cx1: usize, // inclusive
    cy1: usize, // inclusive
}

impl Cluster {
    fn of_cell(c: (usize, usize)) -> Self {
        Cluster {
            cx0: c.0,
            cy0: c.1,
            cx1: c.0,
            cy1: c.1,
        }
    }

    fn merge(&self, o: &Cluster) -> Cluster {
        Cluster {
            cx0: self.cx0.min(o.cx0),
            cy0: self.cy0.min(o.cy0),
            cx1: self.cx1.max(o.cx1),
            cy1: self.cy1.max(o.cy1),
        }
    }

    /// Pixel-space extent (cells are 32×32).
    fn px_size(&self) -> (f32, f32) {
        (
            ((self.cx1 - self.cx0 + 1) * 32) as f32,
            ((self.cy1 - self.cy0 + 1) * 32) as f32,
        )
    }
}

/// Connected components (4-connectivity) of positive cells.
fn connected_components(cells: &[(usize, usize)]) -> Vec<Vec<(usize, usize)>> {
    use std::collections::{HashMap, HashSet};
    let set: HashSet<(usize, usize)> = cells.iter().copied().collect();
    let mut visited: HashSet<(usize, usize)> = HashSet::new();
    let mut comps = Vec::new();
    let mut index: HashMap<(usize, usize), ()> = HashMap::new();
    index.extend(set.iter().map(|&c| (c, ())));
    for &start in cells {
        if visited.contains(&start) {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        visited.insert(start);
        while let Some(c) = stack.pop() {
            comp.push(c);
            let (x, y) = c;
            let mut push = |n: (usize, usize)| {
                if set.contains(&n) && visited.insert(n) {
                    stack.push(n);
                }
            };
            push((x + 1, y));
            push((x, y + 1));
            if x > 0 {
                push((x - 1, y));
            }
            if y > 0 {
                push((x, y - 1));
            }
        }
        comps.push(comp);
    }
    comps
}

/// Cost of covering one cluster with tiles of the cheapest suitable window
/// size from `ws`, and the chosen size. Returns `(cost, size, tiles_x,
/// tiles_y)`.
fn cluster_cost(cluster: &Cluster, ws: &WindowSet) -> (f64, (f32, f32), usize, usize) {
    let (need_w, need_h) = cluster.px_size();
    let mut best: Option<(f64, (f32, f32), usize, usize)> = None;
    for &(w, h) in &ws.sizes {
        let tx = (need_w / w).ceil().max(1.0) as usize;
        let ty = (need_h / h).ceil().max(1.0) as usize;
        let cost = (tx * ty) as f64 * ws.window_time(w, h);
        if best.map(|(c, ..)| cost < c).unwrap_or(true) {
            best = Some((cost, (w, h), tx, ty));
        }
    }
    best.expect("WindowSet always contains the full-frame size")
}

/// Group positive cells into detector windows.
///
/// Returns native-coordinate rectangles covering all positive cells,
/// using sizes from `ws` only. Returns an empty vec when there are no
/// positive cells (the frame can skip detection entirely — the NoScope
/// case). Falls back to a single full-frame window when tiling would be
/// slower.
pub fn group_cells(cells: &[(usize, usize)], ws: &WindowSet) -> Vec<Rect> {
    if cells.is_empty() {
        return Vec::new();
    }
    // 1. connected components → initial clusters
    let mut clusters: Vec<Cluster> = connected_components(cells)
        .into_iter()
        .map(|comp| {
            comp.into_iter()
                .map(Cluster::of_cell)
                .reduce(|a, b| a.merge(&b))
                .unwrap()
        })
        .collect();

    // 2. greedy agglomerative merging while est(R) decreases
    loop {
        let mut best: Option<(usize, usize, f64)> = None; // (i, j, gain)
        for i in 0..clusters.len() {
            let (ci, ..) = cluster_cost(&clusters[i], ws);
            for j in (i + 1)..clusters.len() {
                let (cj, ..) = cluster_cost(&clusters[j], ws);
                let merged = clusters[i].merge(&clusters[j]);
                let (cm, ..) = cluster_cost(&merged, ws);
                let gain = ci + cj - cm;
                if gain > 1e-12 && best.map(|(_, _, g)| gain > g).unwrap_or(true) {
                    best = Some((i, j, gain));
                }
            }
        }
        match best {
            Some((i, j, _)) => {
                let cj = clusters.swap_remove(j);
                let merged = clusters[i].merge(&cj);
                clusters[i] = merged;
            }
            None => break,
        }
    }

    // 3. emit tiled windows per cluster, clamped inside the frame
    let frame = Rect::new(0.0, 0.0, ws.frame_w, ws.frame_h);
    let mut rects = Vec::new();
    let mut total_cost = 0.0;
    for c in &clusters {
        let (cost, (w, h), tx, ty) = cluster_cost(c, ws);
        total_cost += cost;
        let x0 = (c.cx0 * 32) as f32;
        let y0 = (c.cy0 * 32) as f32;
        for iy in 0..ty {
            for ix in 0..tx {
                let mut x = x0 + ix as f32 * w;
                let mut y = y0 + iy as f32 * h;
                // shift the final tiles back inside the frame
                x = x.min(ws.frame_w - w).max(0.0);
                y = y.min(ws.frame_h - h).max(0.0);
                rects.push(Rect::new(x, y, w, h));
            }
        }
    }
    // 4. whole-frame fallback
    let full_cost = ws.window_time(ws.frame_w, ws.frame_h);
    if total_cost >= full_cost {
        return vec![frame];
    }
    rects
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::windows::WindowSet;

    /// A window set over a 384×224 frame with sizes full, 128×96, 64×64.
    fn ws() -> WindowSet {
        WindowSet::new(
            384.0,
            224.0,
            vec![(384.0, 224.0), (128.0, 96.0), (64.0, 64.0)],
            6.2e-8,
            8.0e-4,
        )
    }

    #[test]
    fn no_cells_no_windows() {
        assert!(group_cells(&[], &ws()).is_empty());
    }

    #[test]
    fn single_cell_covered_by_smallest_window() {
        let r = group_cells(&[(2, 3)], &ws());
        assert_eq!(r.len(), 1);
        assert_eq!((r[0].w, r[0].h), (64.0, 64.0));
        // covers the cell at (64..96, 96..128)
        assert!(r[0].contains_point(&otif_geom::Point::new(70.0, 100.0)));
    }

    #[test]
    fn adjacent_cells_merge_into_one_window() {
        let r = group_cells(&[(2, 3), (3, 3)], &ws());
        assert_eq!(r.len(), 1);
        // two cells wide = 64 px fits a 64×64 window
        assert_eq!((r[0].w, r[0].h), (64.0, 64.0));
    }

    #[test]
    fn far_apart_cells_stay_separate() {
        let r = group_cells(&[(0, 0), (10, 5)], &ws());
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|r| (r.w, r.h) == (64.0, 64.0)));
    }

    #[test]
    fn windows_cover_all_positive_cells() {
        let cells = vec![(0, 0), (1, 0), (5, 2), (6, 2), (6, 3), (11, 6)];
        let r = group_cells(&cells, &ws());
        for (cx, cy) in cells {
            let center = otif_geom::Point::new(cx as f32 * 32.0 + 16.0, cy as f32 * 32.0 + 16.0);
            assert!(
                r.iter().any(|w| w.contains_point(&center)),
                "cell ({cx},{cy}) uncovered by {r:?}"
            );
        }
    }

    #[test]
    fn dense_frame_falls_back_to_full_frame() {
        // every cell positive
        let mut cells = Vec::new();
        for cy in 0..7 {
            for cx in 0..12 {
                cells.push((cx, cy));
            }
        }
        let r = group_cells(&cells, &ws());
        assert_eq!(r.len(), 1);
        assert_eq!((r[0].w, r[0].h), (384.0, 224.0));
    }

    #[test]
    fn windows_stay_inside_frame() {
        // cell at the bottom-right corner
        let r = group_cells(&[(11, 6)], &ws());
        let frame = Rect::new(0.0, 0.0, 384.0, 224.0);
        for w in &r {
            assert!(frame.contains_rect(w), "window {w:?} leaves the frame");
        }
    }

    #[test]
    fn grouped_cost_never_exceeds_full_frame() {
        let ws = ws();
        let full = ws.window_time(384.0, 224.0);
        for pattern in [
            vec![(0usize, 0usize)],
            vec![(0, 0), (11, 6), (5, 3)],
            (0..12)
                .flat_map(|x| (0..7).map(move |y| (x, y)))
                .collect::<Vec<_>>(),
        ] {
            let r = group_cells(&pattern, &ws);
            let cost: f64 = r.iter().map(|w| ws.window_time(w.w, w.h)).sum();
            assert!(
                cost <= full + 1e-9,
                "pattern of {} cells cost {cost} > full {full}",
                pattern.len()
            );
        }
    }

    #[test]
    fn connected_components_diagonals_are_separate() {
        let comps = connected_components(&[(0, 0), (1, 1)]);
        assert_eq!(comps.len(), 2, "4-connectivity: diagonal cells separate");
        let comps = connected_components(&[(0, 0), (1, 0), (1, 1)]);
        assert_eq!(comps.len(), 1);
    }
}
