//! A small work-stealing evaluation pool for embarrassingly parallel,
//! deterministic workloads.
//!
//! The tuner evaluates dozens of (detector, resolution, threshold)
//! candidates and the bench harness sweeps whole speed–accuracy curves;
//! every evaluation is independent, takes milliseconds-to-seconds, and
//! must produce *byte-identical* results regardless of how it is
//! scheduled. [`par_map`] provides exactly that contract:
//!
//! - tasks are distributed round-robin over per-worker FIFO deques
//!   (vendored `crossbeam::deque`), with idle workers stealing from the
//!   shared injector first and then from siblings' tails;
//! - each result is returned tagged with its input index and written
//!   into the output slot for that index, so the caller observes the
//!   same `Vec` a sequential `map` would produce;
//! - worker closures must not share mutable state; anything
//!   order-sensitive (RNG draws, ledger charging) must be task-local
//!   and merged by the caller in index order.
//!
//! Nested calls run inline on the current thread: a thread that is
//! already inside a pool executes its inner `par_map` sequentially
//! rather than spawning threads-of-threads. This keeps thread counts
//! bounded when, e.g., a parallel tuner trial reaches a `run_split`
//! that is itself parallelized.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::cell::Cell;
use std::sync::Mutex;

thread_local! {
    /// Set while the current thread is a pool worker; nested pools
    /// degrade to sequential execution instead of oversubscribing.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Resolve a thread-count request: `0` means "auto" — the
/// `OTIF_EVAL_THREADS` environment variable if set, else available
/// parallelism, clamped to the number of tasks. Any resolved value is
/// at least 1.
pub fn resolve_threads(requested: usize, tasks: usize) -> usize {
    let n = if requested > 0 {
        requested
    } else {
        std::env::var("OTIF_EVAL_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    };
    n.clamp(1, tasks.max(1))
}

/// Map `f` over `items` using up to `threads` worker threads (0 = auto,
/// see [`resolve_threads`]), returning results in input order.
///
/// The output is guaranteed identical to
/// `items.into_iter().map(f).collect()` **provided** `f` is a pure
/// function of its arguments (any interior mutation must be task-local).
/// `f` receives `(index, item)` so callers can derive per-task seeds or
/// labels from the position.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n_tasks = items.len();
    let threads = resolve_threads(threads, n_tasks);
    // Sequential fast paths: trivial workloads, an explicit single
    // thread, or a nested call from inside a pool worker.
    if threads == 1 || n_tasks <= 1 || IN_POOL.with(|p| p.get()) {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let injector: Injector<(usize, T)> = Injector::new();
    let workers: Vec<Worker<(usize, T)>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = workers.iter().map(|w| w.stealer()).collect();
    // Round-robin pre-distribution keeps the common balanced case free
    // of any stealing at all; the injector seeds nothing up front but
    // remains the shared overflow/steal target.
    for (i, item) in items.into_iter().enumerate() {
        workers[i % threads].push((i, item));
    }

    let mut out: Vec<Option<R>> = Vec::with_capacity(n_tasks);
    out.resize_with(n_tasks, || None);
    let slots = Mutex::new(&mut out);

    std::thread::scope(|scope| {
        for (wid, worker) in workers.into_iter().enumerate() {
            let f = &f;
            let injector = &injector;
            let stealers = &stealers;
            let slots = &slots;
            scope.spawn(move || {
                IN_POOL.with(|p| p.set(true));
                loop {
                    let task = find_task(&worker, injector, stealers, wid);
                    match task {
                        Some((idx, item)) => {
                            let r = f(idx, item);
                            slots.lock().unwrap()[idx] = Some(r);
                        }
                        None => break,
                    }
                }
                IN_POOL.with(|p| p.set(false));
            });
        }
    });

    out.into_iter()
        .map(|r| r.expect("evalpool: every task produces exactly one result"))
        .collect()
}

/// Next task for worker `wid`: own deque first, then the injector, then
/// steal from siblings' tails. Returns `None` when every queue is dry —
/// with all tasks pushed before the scope starts, empty-everywhere means
/// done (tasks never spawn subtasks).
fn find_task<T>(
    local: &Worker<(usize, T)>,
    injector: &Injector<(usize, T)>,
    stealers: &[Stealer<(usize, T)>],
    wid: usize,
) -> Option<(usize, T)> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        match injector.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    // Rotate the victim order by worker id so thieves spread out.
    let n = stealers.len();
    for k in 1..n {
        let victim = (wid + k) % n;
        loop {
            match stealers[victim].steal() {
                Steal::Success(t) => return Some(t),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let seq: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 4, 7] {
            let par = par_map(threads, items.clone(), |_, x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = par_map(3, items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        // With 4 long-ish tasks and 4 threads, at least two distinct
        // threads should participate. Count distinct thread ids.
        let seen = Mutex::new(std::collections::HashSet::new());
        let barrier = std::sync::Barrier::new(4);
        par_map(4, vec![(); 4], |_, ()| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // Rendezvous forces all four tasks onto different threads.
            barrier.wait();
        });
        assert_eq!(seen.lock().unwrap().len(), 4);
    }

    #[test]
    fn nested_par_map_runs_inline() {
        let spawned = AtomicUsize::new(0);
        let out = par_map(2, vec![10usize, 20], |_, base| {
            spawned.fetch_add(1, Ordering::SeqCst);
            // Inner call must not deadlock or explode thread counts; it
            // runs sequentially because this thread is already pooled.
            let inner = par_map(8, (0..4).collect::<Vec<usize>>(), move |_, x| base + x);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out, vec![10 * 4 + 6, 20 * 4 + 6]);
        assert_eq!(spawned.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn zero_and_one_task_edge_cases() {
        let empty: Vec<u8> = par_map(4, Vec::<u8>::new(), |_, x| x);
        assert!(empty.is_empty());
        let one = par_map(4, vec![41], |_, x| x + 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(8, 3), 3);
        assert_eq!(resolve_threads(2, 100), 2);
        assert_eq!(resolve_threads(5, 0), 1);
        assert!(resolve_threads(0, 64) >= 1);
    }
}
