//! A small work-stealing evaluation pool for embarrassingly parallel,
//! deterministic workloads.
//!
//! The tuner evaluates dozens of (detector, resolution, threshold)
//! candidates and the bench harness sweeps whole speed–accuracy curves;
//! every evaluation is independent, takes milliseconds-to-seconds, and
//! must produce *byte-identical* results regardless of how it is
//! scheduled. [`par_map`] provides exactly that contract:
//!
//! - tasks are distributed round-robin over per-worker FIFO deques
//!   (vendored `crossbeam::deque`), with idle workers stealing from the
//!   shared injector first and then from siblings' tails;
//! - each result is returned tagged with its input index and written
//!   into the output slot for that index, so the caller observes the
//!   same `Vec` a sequential `map` would produce;
//! - worker closures must not share mutable state; anything
//!   order-sensitive (RNG draws, ledger charging) must be task-local
//!   and merged by the caller in index order.
//!
//! Nested calls run inline on the current thread: a thread that is
//! already inside a pool executes its inner `par_map` sequentially
//! rather than spawning threads-of-threads. This keeps thread counts
//! bounded when, e.g., a parallel tuner trial reaches a `run_split`
//! that is itself parallelized.
//!
//! Besides the one-shot [`par_map`], the module provides [`TaskPool`]:
//! a fixed worker pool that repeatedly *polls* resumable tasks
//! ([`PollTask`]) over the same work-stealing deques. A task that would
//! block returns [`Polled::Pending`] and is re-enqueued by a
//! [`TaskWaker`] when its blocking condition clears; a long-running
//! task returns [`Polled::Yielded`] to requeue itself at the global
//! tail (round-robin fairness). This is what lets thousands of
//! cooperatively-scheduled stream stages share a handful of OS threads.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

thread_local! {
    /// Set while the current thread is a pool worker; nested pools
    /// degrade to sequential execution instead of oversubscribing.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Resolve a thread-count request: `0` means "auto" — the
/// `OTIF_EVAL_THREADS` environment variable if set, else available
/// parallelism, clamped to the number of tasks. Any resolved value is
/// at least 1.
pub fn resolve_threads(requested: usize, tasks: usize) -> usize {
    let n = if requested > 0 {
        requested
    } else {
        std::env::var("OTIF_EVAL_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    };
    n.clamp(1, tasks.max(1))
}

/// Map `f` over `items` using up to `threads` worker threads (0 = auto,
/// see [`resolve_threads`]), returning results in input order.
///
/// The output is guaranteed identical to
/// `items.into_iter().map(f).collect()` **provided** `f` is a pure
/// function of its arguments (any interior mutation must be task-local).
/// `f` receives `(index, item)` so callers can derive per-task seeds or
/// labels from the position.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n_tasks = items.len();
    let threads = resolve_threads(threads, n_tasks);
    // Sequential fast paths: trivial workloads, an explicit single
    // thread, or a nested call from inside a pool worker.
    if threads == 1 || n_tasks <= 1 || IN_POOL.with(|p| p.get()) {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let injector: Injector<(usize, T)> = Injector::new();
    let workers: Vec<Worker<(usize, T)>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = workers.iter().map(|w| w.stealer()).collect();
    // Round-robin pre-distribution keeps the common balanced case free
    // of any stealing at all; the injector seeds nothing up front but
    // remains the shared overflow/steal target.
    for (i, item) in items.into_iter().enumerate() {
        workers[i % threads].push((i, item));
    }

    let mut out: Vec<Option<R>> = Vec::with_capacity(n_tasks);
    out.resize_with(n_tasks, || None);
    let slots = Mutex::new(&mut out);

    std::thread::scope(|scope| {
        for (wid, worker) in workers.into_iter().enumerate() {
            let f = &f;
            let injector = &injector;
            let stealers = &stealers;
            let slots = &slots;
            scope.spawn(move || {
                IN_POOL.with(|p| p.set(true));
                loop {
                    let task = find_task(&worker, injector, stealers, wid);
                    match task {
                        Some((idx, item)) => {
                            let r = f(idx, item);
                            slots.lock().unwrap()[idx] = Some(r);
                        }
                        None => break,
                    }
                }
                IN_POOL.with(|p| p.set(false));
            });
        }
    });

    out.into_iter()
        .map(|r| r.expect("evalpool: every task produces exactly one result"))
        .collect()
}

/// Next task for worker `wid`: own deque first, then the injector, then
/// steal from siblings' tails. Returns `None` when every queue is dry —
/// with all tasks pushed before the scope starts, empty-everywhere means
/// done (tasks never spawn subtasks).
fn find_task<T>(
    local: &Worker<(usize, T)>,
    injector: &Injector<(usize, T)>,
    stealers: &[Stealer<(usize, T)>],
    wid: usize,
) -> Option<(usize, T)> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        match injector.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    // Rotate the victim order by worker id so thieves spread out.
    let n = stealers.len();
    for k in 1..n {
        let victim = (wid + k) % n;
        loop {
            match stealers[victim].steal() {
                Steal::Success(t) => return Some(t),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

/// What a [`PollTask::poll`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polled {
    /// The task is finished and must never be polled again.
    Done,
    /// The task cannot make progress until a [`TaskWaker`] wakes it
    /// (e.g. a queue slot it registered interest in frees up). The pool
    /// parks it; waking re-enqueues it.
    Pending,
    /// The task can make more progress but volunteers the worker back:
    /// it is re-enqueued at the global run-queue tail, giving every
    /// other runnable task a turn first (round-robin fairness).
    Yielded,
}

/// A resumable state machine scheduled by a [`TaskPool`].
///
/// `poll` runs the task until it finishes, blocks or exhausts its
/// fairness budget. The pool guarantees `poll` is never called
/// concurrently for one task, and never again after `Done`.
///
/// The contract that makes wake-ups lossless: before returning
/// `Pending`, the task must have registered its waker interest with
/// whatever it is waiting on, *under that resource's lock*. A wake
/// arriving while the task is still mid-poll is latched (the pool
/// re-enqueues the task after the poll returns), so the
/// register-then-return window cannot lose a notification.
pub trait PollTask: Send {
    /// Advance the state machine.
    fn poll(&mut self) -> Polled;

    /// The pool's stall watchdog expired this task: it sat parked
    /// (`Pending`, never woken) longer than the pool's stall timeout.
    /// Return `true` to expire the task — it is dropped without another
    /// `poll`, so the implementation should record the stall and
    /// release its resources here — or `false` to keep waiting (the
    /// park deadline resets). Runnable-but-queued tasks are never
    /// considered stalled: yielded is not wedged.
    fn on_stall(&mut self) -> bool {
        true
    }
}

/// Scheduling counters of one [`TaskPool::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolMetrics {
    /// Worker threads the pool ran.
    pub workers: usize,
    /// Total `poll` invocations.
    pub polls: u64,
    /// Tasks stolen from a sibling worker's deque.
    pub steals: u64,
    /// Peak number of runnable (queued, not yet polled) tasks.
    pub peak_runnable: u64,
    /// Tasks expired by the stall watchdog.
    pub expired: u64,
}

// Task scheduling states. Transitions:
//   QUEUED  -> RUNNING           (worker dequeues and polls)
//   RUNNING -> IDLE              (poll returned Pending, no wake raced)
//   RUNNING -> NOTIFIED          (TaskWaker fired mid-poll)
//   RUNNING | NOTIFIED -> QUEUED (poll returned Yielded, or Pending
//                                 with a latched wake)
//   IDLE    -> QUEUED            (TaskWaker fired while parked)
//   any     -> DONE              (poll returned Done, or stall expiry)
const T_QUEUED: u8 = 0;
const T_RUNNING: u8 = 1;
const T_IDLE: u8 = 2;
const T_NOTIFIED: u8 = 3;
const T_DONE: u8 = 4;

/// Not-parked marker for `parked_ms`.
const NOT_PARKED: u64 = u64::MAX;

struct PoolCore {
    injector: Injector<usize>,
    states: Vec<AtomicU8>,
    /// Milliseconds since `epoch` at which the task last stopped
    /// running — parked (entered IDLE) or re-queued (woken, yielded) —
    /// i.e. how long it has been waiting for progress. `NOT_PARKED`
    /// while running or before the first poll. Only meaningful for the
    /// stall watchdog: over-parked IDLE tasks are expired by the scan,
    /// and over-queued tasks (starved of a worker by a monopolizing
    /// poll) are offered `on_stall` at dispatch.
    parked_ms: Vec<AtomicU64>,
    /// Tasks not yet DONE.
    live: AtomicUsize,
    /// Tasks currently queued (injector + local deques).
    runnable: AtomicUsize,
    peak_runnable: AtomicU64,
    polls: AtomicU64,
    steals: AtomicU64,
    expired: AtomicU64,
    /// Parked-worker count, guarded by the sleep mutex so a wake
    /// between the idle check and the wait cannot be lost.
    sleep: Mutex<usize>,
    wake_cv: Condvar,
    /// Wakes the dedicated watchdog thread for shutdown (it otherwise
    /// ticks on its own scan interval).
    watchdog_cv: Condvar,
    epoch: Instant,
    stall_timeout: Option<Duration>,
    last_scan_ms: AtomicU64,
}

impl PoolCore {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Push a runnable task to the shared tail and wake a parked worker
    /// if any. Caller must already have moved the task's state to
    /// QUEUED.
    fn enqueue(&self, task: usize) {
        self.injector.push(task);
        let r = self.runnable.fetch_add(1, Ordering::SeqCst) as u64 + 1;
        self.peak_runnable.fetch_max(r, Ordering::Relaxed);
        let idle = self.sleep.lock().unwrap();
        if *idle > 0 {
            self.wake_cv.notify_one();
        }
        drop(idle);
    }

    fn wake(&self, task: usize) {
        loop {
            let state = self.states[task].load(Ordering::SeqCst);
            match state {
                T_IDLE => {
                    if self.states[task]
                        .compare_exchange(T_IDLE, T_QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        // Waiting-clock restarts: the task is now
                        // runnable, so the watchdog measures time queued
                        // without a worker, not the old park.
                        self.parked_ms[task].store(self.now_ms(), Ordering::SeqCst);
                        self.enqueue(task);
                        return;
                    }
                }
                T_RUNNING => {
                    if self.states[task]
                        .compare_exchange(T_RUNNING, T_NOTIFIED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        return; // latched; the worker requeues after poll
                    }
                }
                // Already queued/latched/done: nothing to do.
                _ => return,
            }
        }
    }

    fn notify_all_workers(&self) {
        let _idle = self.sleep.lock().unwrap();
        self.wake_cv.notify_all();
        self.watchdog_cv.notify_all();
    }
}

/// Wakes one task of a [`TaskPool`]: re-enqueues it if parked, latches
/// the wake if it is mid-poll, and is a no-op if it is already queued
/// or done. Cheap to clone; safe to call from any thread (including
/// from inside other tasks' polls).
#[derive(Clone)]
pub struct TaskWaker {
    core: Arc<PoolCore>,
    task: usize,
}

impl TaskWaker {
    /// Wake the task.
    pub fn wake(&self) {
        self.core.wake(self.task);
    }
}

/// A fixed pool of worker threads repeatedly polling a set of
/// resumable tasks (created up front) until all are done. Built on the
/// same crossbeam work-stealing deques as [`par_map`]: initial tasks
/// are distributed round-robin over per-worker FIFO deques, re-enqueues
/// (wakes and yields) go through the shared injector tail, and idle
/// workers steal from siblings.
pub struct TaskPool {
    core: Arc<PoolCore>,
}

impl TaskPool {
    /// A pool for exactly `n_tasks` tasks. `stall_timeout` arms the
    /// stall watchdog: a task parked (Pending, never woken) longer than
    /// this is offered to [`PollTask::on_stall`].
    pub fn new(n_tasks: usize, stall_timeout: Option<Duration>) -> TaskPool {
        TaskPool {
            core: Arc::new(PoolCore {
                injector: Injector::new(),
                states: (0..n_tasks).map(|_| AtomicU8::new(T_QUEUED)).collect(),
                parked_ms: (0..n_tasks).map(|_| AtomicU64::new(NOT_PARKED)).collect(),
                live: AtomicUsize::new(n_tasks),
                runnable: AtomicUsize::new(n_tasks),
                peak_runnable: AtomicU64::new(n_tasks as u64),
                polls: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                expired: AtomicU64::new(0),
                sleep: Mutex::new(0),
                wake_cv: Condvar::new(),
                watchdog_cv: Condvar::new(),
                epoch: Instant::now(),
                stall_timeout,
                last_scan_ms: AtomicU64::new(0),
            }),
        }
    }

    /// A waker handle for task `task` (indices follow the order of the
    /// task vector later passed to [`Self::run`]). Handles may be
    /// created and used before, during and after the run; waking a
    /// finished task is a no-op.
    pub fn waker(&self, task: usize) -> TaskWaker {
        assert!(task < self.core.states.len(), "waker index out of range");
        TaskWaker {
            core: Arc::clone(&self.core),
            task,
        }
    }

    /// Drive all tasks to completion on `workers` threads and return
    /// the scheduling metrics. `tasks.len()` must equal the `n_tasks`
    /// the pool was created for. Every task is polled at least once.
    pub fn run<'env>(&self, workers: usize, tasks: Vec<Box<dyn PollTask + 'env>>) -> PoolMetrics {
        let core = &self.core;
        assert_eq!(tasks.len(), core.states.len(), "task count mismatch");
        let n_tasks = tasks.len();
        let workers = workers.max(1);
        if n_tasks == 0 {
            return PoolMetrics {
                workers,
                ..PoolMetrics::default()
            };
        }
        let slots: Vec<Mutex<Option<Box<dyn PollTask + 'env>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let locals: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<usize>> = locals.iter().map(|w| w.stealer()).collect();
        // Round-robin pre-distribution: task i starts on worker i % W,
        // so the initial poll order interleaves streams across workers.
        for t in 0..n_tasks {
            locals[t % workers].push(t);
        }
        let scan_every = core
            .stall_timeout
            .map(|t| (t / 4).clamp(Duration::from_millis(5), Duration::from_millis(250)));
        std::thread::scope(|scope| {
            for (wid, local) in locals.into_iter().enumerate() {
                let slots = &slots;
                let stealers = &stealers;
                scope.spawn(move || {
                    worker_loop(core, wid, local, stealers, slots, scan_every);
                });
            }
            // One dedicated watchdog thread when the stall timeout is
            // armed: scanning must not depend on a worker being free —
            // with every worker stuck in a long poll (a single-worker
            // pool sleeping inside an injected stall, say), parked
            // neighbours would otherwise be woken by the draining
            // before anyone could observe that they sat wedged past
            // the deadline.
            if let Some(every) = scan_every {
                let slots = &slots;
                scope.spawn(move || watchdog_loop(core, slots, every));
            }
        });
        PoolMetrics {
            workers,
            polls: core.polls.load(Ordering::Relaxed),
            steals: core.steals.load(Ordering::Relaxed),
            peak_runnable: core.peak_runnable.load(Ordering::Relaxed),
            expired: core.expired.load(Ordering::Relaxed),
        }
    }
}

fn worker_loop<'env>(
    core: &PoolCore,
    wid: usize,
    local: Worker<usize>,
    stealers: &[Stealer<usize>],
    slots: &[Mutex<Option<Box<dyn PollTask + 'env>>>],
    scan_every: Option<Duration>,
) {
    loop {
        if core.live.load(Ordering::SeqCst) == 0 {
            core.notify_all_workers();
            return;
        }
        match next_task(core, &local, stealers, wid) {
            Some(task) => {
                core.runnable.fetch_sub(1, Ordering::SeqCst);
                run_one(core, task, slots);
                // Opportunistic stall scan: a busy pool (no parked
                // workers) must still notice wedged tasks.
                if let Some(every) = scan_every {
                    let now = core.now_ms();
                    let last = core.last_scan_ms.load(Ordering::Relaxed);
                    if now.saturating_sub(last) >= every.as_millis() as u64
                        && core
                            .last_scan_ms
                            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                    {
                        expire_stalled(core, slots);
                    }
                }
            }
            None => {
                let mut idle = core.sleep.lock().unwrap();
                if core.live.load(Ordering::SeqCst) == 0 {
                    drop(idle);
                    core.notify_all_workers();
                    return;
                }
                if core.runnable.load(Ordering::SeqCst) > 0 {
                    continue; // raced with an enqueue; retry the deques
                }
                *idle += 1;
                let timed_out = match scan_every {
                    None => {
                        idle = core.wake_cv.wait(idle).unwrap();
                        false
                    }
                    Some(every) => {
                        let (guard, result) = core.wake_cv.wait_timeout(idle, every).unwrap();
                        idle = guard;
                        result.timed_out()
                    }
                };
                *idle -= 1;
                drop(idle);
                if timed_out {
                    expire_stalled(core, slots);
                }
            }
        }
    }
}

/// Next runnable task for worker `wid`: own deque, then the injector,
/// then steal from siblings (victim order rotated by worker id).
fn next_task(
    core: &PoolCore,
    local: &Worker<usize>,
    stealers: &[Stealer<usize>],
    wid: usize,
) -> Option<usize> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        match core.injector.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    let n = stealers.len();
    for k in 1..n {
        let victim = (wid + k) % n;
        loop {
            match stealers[victim].steal() {
                Steal::Success(t) => {
                    core.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(t);
                }
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

fn run_one<'env>(core: &PoolCore, task: usize, slots: &[Mutex<Option<Box<dyn PollTask + 'env>>>]) {
    // Only the dequeuing worker moves QUEUED -> RUNNING, so the poll
    // below is exclusive.
    core.states[task].store(T_RUNNING, Ordering::SeqCst);
    // Dispatch-time starvation check: a task that sat *queued* past the
    // stall deadline was starved of a worker (every worker stuck in a
    // monopolizing poll — e.g. a single-worker pool sleeping inside a
    // stall fault). That is the same wedge as an over-parked task seen
    // from the runnable side, so it gets the same `on_stall` offer —
    // exclusively, since this worker owns the task now.
    if let Some(timeout) = core.stall_timeout {
        let since = core.parked_ms[task].load(Ordering::SeqCst);
        if since != NOT_PARKED && core.now_ms().saturating_sub(since) >= timeout.as_millis() as u64
        {
            let mut slot = slots[task].lock().unwrap();
            let expire = slot.as_mut().map(|t| t.on_stall()).unwrap_or(false);
            if expire {
                *slot = None;
                drop(slot);
                core.parked_ms[task].store(NOT_PARKED, Ordering::SeqCst);
                core.states[task].store(T_DONE, Ordering::SeqCst);
                core.expired.fetch_add(1, Ordering::Relaxed);
                finish_one(core);
                return;
            }
            // Keep-waiting verdict: poll normally (it is runnable).
        }
    }
    core.parked_ms[task].store(NOT_PARKED, Ordering::SeqCst);
    core.polls.fetch_add(1, Ordering::Relaxed);
    let mut slot = slots[task].lock().unwrap();
    let polled = match slot.as_mut() {
        Some(t) => t.poll(),
        None => Polled::Done, // expired concurrently; nothing to do
    };
    match polled {
        Polled::Done => {
            // Drop the task while holding its slot: endpoints close and
            // guards release before anyone observes the DONE state.
            *slot = None;
            drop(slot);
            core.states[task].store(T_DONE, Ordering::SeqCst);
            finish_one(core);
        }
        Polled::Yielded => {
            drop(slot);
            // A wake latched mid-poll collapses into the same requeue.
            core.parked_ms[task].store(core.now_ms(), Ordering::SeqCst);
            core.states[task].store(T_QUEUED, Ordering::SeqCst);
            core.enqueue(task);
        }
        Polled::Pending => {
            drop(slot);
            core.parked_ms[task].store(core.now_ms(), Ordering::SeqCst);
            if core.states[task]
                .compare_exchange(T_RUNNING, T_IDLE, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                // A wake latched during the poll (NOTIFIED): requeue
                // instead of parking, so the notification is not lost.
                // The park timestamp stands in as the queued-since mark.
                core.states[task].store(T_QUEUED, Ordering::SeqCst);
                core.enqueue(task);
            }
        }
    }
}

fn finish_one(core: &PoolCore) {
    if core.live.fetch_sub(1, Ordering::SeqCst) == 1 {
        core.notify_all_workers();
    }
}

/// The dedicated stall scanner: ticks every `every`, expiring
/// over-parked tasks, until all tasks are done (shutdown is signalled
/// through `watchdog_cv` so the run doesn't linger a tick).
fn watchdog_loop<'env>(
    core: &PoolCore,
    slots: &[Mutex<Option<Box<dyn PollTask + 'env>>>],
    every: Duration,
) {
    loop {
        let guard = core.sleep.lock().unwrap();
        if core.live.load(Ordering::SeqCst) == 0 {
            return;
        }
        let (guard, _) = core.watchdog_cv.wait_timeout(guard, every).unwrap();
        if core.live.load(Ordering::SeqCst) == 0 {
            return;
        }
        drop(guard);
        expire_stalled(core, slots);
    }
}

/// Offer every over-parked task to its `on_stall` hook. Stealing the
/// task via IDLE -> RUNNING makes the call exclusive against wakes and
/// other scanners; a concurrent wake simply latches and requeues.
fn expire_stalled<'env>(core: &PoolCore, slots: &[Mutex<Option<Box<dyn PollTask + 'env>>>]) {
    let Some(timeout) = core.stall_timeout else {
        return;
    };
    let timeout_ms = timeout.as_millis() as u64;
    let now = core.now_ms();
    for (task, state) in core.states.iter().enumerate() {
        if state.load(Ordering::SeqCst) != T_IDLE {
            continue;
        }
        let parked = core.parked_ms[task].load(Ordering::SeqCst);
        if parked == NOT_PARKED || now.saturating_sub(parked) < timeout_ms {
            continue;
        }
        if state
            .compare_exchange(T_IDLE, T_RUNNING, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            continue; // woken in the meantime — not stalled
        }
        let mut slot = slots[task].lock().unwrap();
        let expire = slot.as_mut().map(|t| t.on_stall()).unwrap_or(false);
        if expire {
            *slot = None;
            drop(slot);
            core.states[task].store(T_DONE, Ordering::SeqCst);
            core.expired.fetch_add(1, Ordering::Relaxed);
            finish_one(core);
        } else {
            drop(slot);
            core.parked_ms[task].store(core.now_ms(), Ordering::SeqCst);
            if core.states[task]
                .compare_exchange(T_RUNNING, T_IDLE, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                core.states[task].store(T_QUEUED, Ordering::SeqCst);
                core.enqueue(task);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let seq: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 4, 7] {
            let par = par_map(threads, items.clone(), |_, x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = par_map(3, items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        // With 4 long-ish tasks and 4 threads, at least two distinct
        // threads should participate. Count distinct thread ids.
        let seen = Mutex::new(std::collections::HashSet::new());
        let barrier = std::sync::Barrier::new(4);
        par_map(4, vec![(); 4], |_, ()| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // Rendezvous forces all four tasks onto different threads.
            barrier.wait();
        });
        assert_eq!(seen.lock().unwrap().len(), 4);
    }

    #[test]
    fn nested_par_map_runs_inline() {
        let spawned = AtomicUsize::new(0);
        let out = par_map(2, vec![10usize, 20], |_, base| {
            spawned.fetch_add(1, Ordering::SeqCst);
            // Inner call must not deadlock or explode thread counts; it
            // runs sequentially because this thread is already pooled.
            let inner = par_map(8, (0..4).collect::<Vec<usize>>(), move |_, x| base + x);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out, vec![10 * 4 + 6, 20 * 4 + 6]);
        assert_eq!(spawned.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn zero_and_one_task_edge_cases() {
        let empty: Vec<u8> = par_map(4, Vec::<u8>::new(), |_, x| x);
        assert!(empty.is_empty());
        let one = par_map(4, vec![41], |_, x| x + 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(8, 3), 3);
        assert_eq!(resolve_threads(2, 100), 2);
        assert_eq!(resolve_threads(5, 0), 1);
        assert!(resolve_threads(0, 64) >= 1);
    }

    struct CountdownTask {
        remaining: usize,
        touched: Arc<AtomicUsize>,
    }

    impl PollTask for CountdownTask {
        fn poll(&mut self) -> Polled {
            self.touched.fetch_add(1, Ordering::SeqCst);
            if self.remaining == 0 {
                return Polled::Done;
            }
            self.remaining -= 1;
            Polled::Yielded
        }
    }

    #[test]
    fn pool_drives_yielding_tasks_to_completion_at_any_width() {
        for workers in [1usize, 2, 8] {
            let touched = Arc::new(AtomicUsize::new(0));
            let pool = TaskPool::new(16, None);
            let tasks: Vec<Box<dyn PollTask>> = (0..16)
                .map(|i| {
                    Box::new(CountdownTask {
                        remaining: i,
                        touched: Arc::clone(&touched),
                    }) as Box<dyn PollTask>
                })
                .collect();
            let metrics = pool.run(workers, tasks);
            assert_eq!(metrics.workers, workers.max(1));
            // Each task polls remaining+1 times: sum(0..16) + 16.
            assert_eq!(touched.load(Ordering::SeqCst), 120 + 16);
            assert_eq!(metrics.polls, 136);
            assert_eq!(metrics.expired, 0);
            assert!(metrics.peak_runnable >= 1);
        }
    }

    /// Two tasks ping-ponging through a shared mailbox: each parks
    /// Pending until the other's waker fires. Exercises the
    /// IDLE->QUEUED and RUNNING->NOTIFIED wake paths.
    struct PingPong {
        me: usize,
        mailbox: Arc<Mutex<usize>>,
        peer_waker: Arc<Mutex<Option<TaskWaker>>>,
        rounds: usize,
    }

    impl PollTask for PingPong {
        fn poll(&mut self) -> Polled {
            loop {
                if self.rounds == 0 {
                    return Polled::Done;
                }
                let mut slot = self.mailbox.lock().unwrap();
                if *slot != self.me {
                    // Not our turn: the peer's poll flips the mailbox
                    // and wakes us (waker registered before parking,
                    // under the mailbox lock — no lost wakeup).
                    return Polled::Pending;
                }
                *slot = 1 - self.me;
                self.rounds -= 1;
                if let Some(w) = self.peer_waker.lock().unwrap().as_ref() {
                    w.wake();
                }
                drop(slot);
            }
        }
    }

    #[test]
    fn pending_tasks_wake_each_other_through_wakers() {
        for workers in [1usize, 2, 4] {
            let mailbox = Arc::new(Mutex::new(0usize));
            let waker0 = Arc::new(Mutex::new(None));
            let waker1 = Arc::new(Mutex::new(None));
            let pool = TaskPool::new(2, None);
            *waker0.lock().unwrap() = Some(pool.waker(0));
            *waker1.lock().unwrap() = Some(pool.waker(1));
            let tasks: Vec<Box<dyn PollTask>> = vec![
                Box::new(PingPong {
                    me: 0,
                    mailbox: Arc::clone(&mailbox),
                    peer_waker: Arc::clone(&waker1),
                    rounds: 50,
                }),
                Box::new(PingPong {
                    me: 1,
                    mailbox: Arc::clone(&mailbox),
                    peer_waker: Arc::clone(&waker0),
                    rounds: 50,
                }),
            ];
            let metrics = pool.run(workers, tasks);
            assert_eq!(metrics.expired, 0);
            assert!(metrics.polls >= 100);
        }
    }

    struct Wedged {
        verdicts: Arc<AtomicUsize>,
        expire_on: usize,
    }

    impl PollTask for Wedged {
        fn poll(&mut self) -> Polled {
            Polled::Pending // parks forever; only the watchdog ends it
        }

        fn on_stall(&mut self) -> bool {
            let n = self.verdicts.fetch_add(1, Ordering::SeqCst) + 1;
            n >= self.expire_on
        }
    }

    #[test]
    fn stall_watchdog_expires_wedged_tasks_after_keep_waiting_verdicts() {
        for workers in [1usize, 4] {
            let verdicts = Arc::new(AtomicUsize::new(0));
            let pool = TaskPool::new(2, Some(Duration::from_millis(20)));
            let tasks: Vec<Box<dyn PollTask>> = vec![
                Box::new(Wedged {
                    verdicts: Arc::clone(&verdicts),
                    expire_on: 3,
                }),
                Box::new(CountdownTask {
                    remaining: 4,
                    touched: Arc::new(AtomicUsize::new(0)),
                }),
            ];
            let metrics = pool.run(workers, tasks);
            assert_eq!(metrics.expired, 1, "workers={workers}");
            // First two on_stall calls said keep-waiting, third expired.
            assert_eq!(verdicts.load(Ordering::SeqCst), 3, "workers={workers}");
        }
    }

    #[test]
    fn empty_pool_returns_immediately() {
        let pool = TaskPool::new(0, None);
        let metrics = pool.run(4, Vec::new());
        assert_eq!(metrics.polls, 0);
    }
}
