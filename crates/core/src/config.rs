//! Pipeline configurations (the paper's θ).

use otif_cv::{DetectorArch, DetectorConfig};
use serde::{Deserialize, Serialize};

/// Segmentation-proxy parameters: which trained resolution to use and the
/// confidence threshold B_proxy above which a cell is "positive".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProxyParams {
    /// Index into [`crate::proxy::PROXY_SCALES`] (and the set of trained
    /// proxy models).
    pub resolution_idx: usize,
    /// Cell-score threshold B_proxy in `[0, 1]`.
    pub threshold: f32,
}

/// Which tracker the tracking module runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackerKind {
    /// Heuristic SORT (used in θ_best and the "+ Sampling Rate" ablation).
    Sort,
    /// The trained recurrent reduced-rate tracker (§3.4).
    Recurrent,
}

/// A full OTIF configuration θ: settings for all six tunable parameters
/// across the three modules (§3.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtifConfig {
    /// Detection module: architecture + input resolution + confidence
    /// threshold.
    pub detector: DetectorConfig,
    /// Proxy module; `None` disables the proxy (detector runs on the full
    /// frame).
    pub proxy: Option<ProxyParams>,
    /// Tracking module: sampling gap g (process 1 in every g frames;
    /// powers of two).
    pub gap: usize,
    /// Which tracker the tracking module runs.
    pub tracker: TrackerKind,
    /// Whether cluster-based start/end refinement is applied (fixed
    /// cameras only, §3.4).
    pub refine: bool,
}

impl OtifConfig {
    /// The slowest possible configuration: native resolution, every frame,
    /// no proxy, SORT tracker (the starting point of θ_best selection,
    /// §3.3).
    pub fn slowest() -> Self {
        OtifConfig {
            detector: DetectorConfig::new(DetectorArch::MaskRcnn, 1.0),
            proxy: None,
            gap: 1,
            tracker: TrackerKind::Sort,
            refine: false,
        }
    }

    /// Short human-readable description for logs and experiment output.
    pub fn describe(&self) -> String {
        format!(
            "{}@{:.3}x conf={:.2} proxy={} gap={} tracker={:?}{}",
            self.detector.arch.name(),
            self.detector.scale,
            self.detector.conf_threshold,
            match &self.proxy {
                None => "off".to_string(),
                Some(p) => format!("r{} B={:.2}", p.resolution_idx, p.threshold),
            },
            self.gap,
            self.tracker,
            if self.refine { " +refine" } else { "" },
        )
    }
}

/// Round up to the next power of two (min 1).
pub fn next_pow2(x: f32) -> usize {
    let mut g = 1usize;
    while (g as f32) < x {
        g *= 2;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowest_config_is_actually_slowest() {
        let s = OtifConfig::slowest();
        assert_eq!(s.detector.scale, 1.0);
        assert_eq!(s.gap, 1);
        assert!(s.proxy.is_none());
        // Mask R-CNN is the more expensive architecture.
        assert!(s.detector.arch.per_px() >= DetectorArch::YoloV3.per_px());
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(0.5), 1);
        assert_eq!(next_pow2(1.0), 1);
        assert_eq!(next_pow2(1.1), 2);
        assert_eq!(next_pow2(2.0), 2);
        assert_eq!(next_pow2(5.7), 8);
        assert_eq!(next_pow2(8.0), 8);
    }

    #[test]
    fn describe_mentions_key_params() {
        let mut c = OtifConfig::slowest();
        c.proxy = Some(ProxyParams {
            resolution_idx: 2,
            threshold: 0.9,
        });
        c.gap = 4;
        let d = c.describe();
        assert!(d.contains("gap=4"));
        assert!(d.contains("r2"));
        assert!(d.contains("mask-rcnn"));
    }
}
