//! Best-accuracy configuration selection (§3.3).
//!
//! θ_best provides the pseudo-labels used to train the proxy and tracker
//! models. Selection starts from the slowest configuration (no proxy,
//! maximum detector resolution, maximum sampling rate, SORT tracker),
//! then repeatedly reduces the detector resolution in ~C speed steps
//! until accuracy drops, then does the same for the sampling rate — the
//! paper notes accuracy is often *higher* at lower resolutions, which is
//! why the search does not simply stop at the native settings.

use crate::config::{OtifConfig, TrackerKind};
use crate::pipeline::{ExecutionContext, Pipeline};
use otif_cv::{DetectorArch, DetectorConfig};
use otif_sim::Clip;
use otif_track::Track;

/// Accuracy-comparison slack: differences below this are treated as "not
/// a decrease" so noise does not halt the search prematurely.
const EPS: f32 = 0.005;

/// Select θ_best over the validation split with the user metric.
///
/// Returns the configuration, its validation accuracy, and the total
/// simulated seconds spent on selection trials (a pre-processing cost).
pub fn select_theta_best(
    val: &[Clip],
    ctx: &ExecutionContext,
    metric: &(dyn Fn(&[Vec<Track>]) -> f32 + Sync),
    c: f32,
) -> (OtifConfig, f32, f64) {
    let mut trial_seconds = 0.0;
    let mut eval = |cfg: &OtifConfig| -> f32 {
        let (_, acc, secs) = Pipeline::evaluate(cfg, ctx, val, metric);
        trial_seconds += secs;
        acc
    };

    // Architecture: evaluate both at native resolution, keep the more
    // accurate one.
    let mut best_cfg = OtifConfig {
        detector: DetectorConfig::new(DetectorArch::MaskRcnn, 1.0),
        proxy: None,
        gap: 1,
        tracker: TrackerKind::Sort,
        refine: false,
    };
    let mut best_acc = eval(&best_cfg);
    {
        let mut alt = best_cfg;
        alt.detector.arch = DetectorArch::YoloV3;
        let acc = eval(&alt);
        if acc > best_acc {
            best_cfg = alt;
            best_acc = acc;
        }
    }

    // Resolution descent: each step must be ≥ C faster (scale factor
    // sqrt(1-C) per linear dimension ⇒ (1-C) in pixels).
    let mut cur = best_cfg;
    let mut cur_acc = best_acc;
    loop {
        let target_scale = cur.detector.scale * (1.0 - c).sqrt();
        let next = DetectorConfig::SCALES
            .iter()
            .copied()
            .filter(|&s| s <= target_scale + 1e-6 && s < cur.detector.scale)
            .fold(None::<f32>, |acc, s| {
                Some(acc.map(|a| a.max(s)).unwrap_or(s))
            });
        let Some(scale) = next else { break };
        let mut cand = cur;
        cand.detector.scale = scale;
        let acc = eval(&cand);
        if acc + EPS < cur_acc {
            break; // accuracy decreased — keep the best seen so far
        }
        cur = cand;
        cur_acc = acc;
        if cur_acc > best_acc {
            best_acc = cur_acc;
            best_cfg = cur;
        }
    }
    if cur_acc >= best_acc - EPS {
        best_cfg = cur;
        best_acc = best_acc.max(cur_acc);
    }

    // Sampling-rate descent: doubling the gap is always a ≥ C speedup for
    // C ≤ 0.5.
    let mut cur = best_cfg;
    let mut cur_acc = best_acc;
    while cur.gap < 32 {
        let mut cand = cur;
        cand.gap = cur.gap * 2;
        let acc = eval(&cand);
        if acc + EPS < cur_acc {
            break;
        }
        cur = cand;
        cur_acc = acc;
        if cur_acc > best_acc {
            best_acc = cur_acc;
            best_cfg = cur;
        }
    }
    if cur_acc >= best_acc - EPS {
        best_cfg = cur;
        best_acc = best_acc.max(cur_acc);
    }

    (best_cfg, best_acc, trial_seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_cv::CostModel;
    use otif_sim::{DatasetConfig, DatasetKind};

    /// Track-count accuracy vs ground truth: 1 − |x̂ − x*| / x*.
    fn count_metric(clips: &[otif_sim::Clip]) -> impl Fn(&[Vec<Track>]) -> f32 + Sync + '_ {
        move |tracks: &[Vec<Track>]| {
            let mut acc = 0.0;
            for (i, ts) in tracks.iter().enumerate() {
                let gt = clips[i].gt_tracks.len() as f32;
                let got = ts.len() as f32;
                if gt > 0.0 {
                    acc += (1.0 - (got - gt).abs() / gt).max(0.0);
                } else {
                    acc += if got == 0.0 { 1.0 } else { 0.0 };
                }
            }
            acc / tracks.len().max(1) as f32
        }
    }

    #[test]
    fn theta_best_selection_terminates_and_has_no_proxy() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 21).generate();
        let ctx = ExecutionContext::bare(CostModel::default(), 9);
        let metric = count_metric(&d.val);
        let (cfg, acc, secs) = select_theta_best(&d.val, &ctx, &metric, 0.3);
        assert!(cfg.proxy.is_none(), "θ_best never uses a proxy");
        assert_eq!(cfg.tracker, TrackerKind::Sort, "θ_best uses SORT");
        assert!(acc > 0.5, "θ_best accuracy {acc}");
        assert!(secs > 0.0);
        assert!(cfg.gap >= 1 && cfg.gap <= 32);
    }

    #[test]
    fn theta_best_accuracy_not_worse_than_slowest() {
        let d = DatasetConfig::small(DatasetKind::Caldot2, 22).generate();
        let ctx = ExecutionContext::bare(CostModel::default(), 9);
        let metric = count_metric(&d.val);
        let slowest_acc = {
            let (_, acc, _) = Pipeline::evaluate(&OtifConfig::slowest(), &ctx, &d.val, &metric);
            acc
        };
        let (_, best_acc, _) = select_theta_best(&d.val, &ctx, &metric, 0.3);
        assert!(
            best_acc >= slowest_acc - 0.01,
            "θ_best {best_acc} vs slowest {slowest_acc}"
        );
    }
}
