//! The joint parameter tuner (§3.5).
//!
//! The tuner produces a sequence of configurations Θ = ⟨θ_1, …, θ_n⟩
//! forming a speed–accuracy curve that approximates the Pareto frontier.
//! Exhaustive search is exponential in the number of parameters, so the
//! tuner runs a *modular* greedy hill-climb: starting from θ_best, each
//! iteration asks every module (detection / proxy / tracking) for a
//! candidate configuration ~C faster overall, evaluates each candidate on
//! the validation split, and keeps the most accurate. With m modules and
//! n output configurations this needs O(m·n) validation trials.
//!
//! Before the greedy loop, a **caching phase** gathers what the modules
//! need to answer "give me a C-faster update": per (architecture,
//! resolution) detector times and accuracies (§3.5.1), and per (proxy
//! resolution, threshold) runtime estimates and recalls (§3.5.2).

use crate::config::{next_pow2, OtifConfig, ProxyParams};
use crate::evalpool;
use crate::grouping::group_cells;
use crate::pipeline::{decode_cost, ExecutionContext, Pipeline};
use otif_cv::{DetectorArch, DetectorConfig, SimDetector};
use otif_sim::{Clip, Renderer};
use otif_track::Track;
use serde::{Deserialize, Serialize};

/// Tuner options.
#[derive(Debug, Clone)]
pub struct TunerOptions {
    /// Tuning coarseness C: each step targets a ~C overall speedup
    /// (the paper uses 30 %).
    pub c: f32,
    /// Maximum number of greedy iterations (curve points − 1).
    pub max_iters: usize,
    /// Candidate proxy thresholds B_proxy.
    pub thresholds: Vec<f32>,
    /// Largest sampling gap considered.
    pub max_gap: usize,
    /// Stride over validation frames during the proxy caching phase (the
    /// cached statistics are per-frame averages, so sub-sampling is safe).
    pub proxy_cache_stride: usize,
    /// Whether gap increases switch the tracker to the trained recurrent
    /// model (§3.4). Off for the "+ Sampling Rate" ablation, which keeps
    /// SORT at every gap.
    pub use_recurrent: bool,
    /// Worker threads for candidate / caching evaluations: 0 = auto
    /// (`OTIF_EVAL_THREADS` or available parallelism). The curve is
    /// byte-identical at every thread count — evaluations are
    /// independent and reduced in deterministic index order.
    pub threads: usize,
}

impl Default for TunerOptions {
    fn default() -> Self {
        TunerOptions {
            c: 0.3,
            max_iters: 10,
            thresholds: vec![0.3, 0.5, 0.7, 0.85, 0.95],
            max_gap: 32,
            proxy_cache_stride: 4,
            use_recurrent: true,
            threads: 0,
        }
    }
}

/// One point of the output speed–accuracy curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CurvePoint {
    /// The configuration this point corresponds to.
    pub config: OtifConfig,
    /// Simulated execution seconds over the validation split.
    pub val_seconds: f64,
    /// Validation accuracy under the user metric.
    pub accuracy: f32,
}

/// Cached statistics for one detector (arch, scale) combo.
#[derive(Debug, Clone, Copy)]
struct DetCacheEntry {
    arch: DetectorArch,
    scale: f32,
    /// Simulated seconds per processed frame (detector + decode).
    time_per_frame: f64,
    accuracy: f32,
}

/// Cached statistics for one proxy (resolution, threshold) combo.
#[derive(Debug, Clone, Copy)]
struct ProxyCacheEntry {
    resolution_idx: usize,
    threshold: f32,
    /// Simulated seconds per processed frame (proxy + windowed detector).
    time_per_frame: f64,
    /// Fraction of θ_best detections covered by the windows.
    recall: f32,
}

/// The OTIF tuner.
pub struct Tuner<'a> {
    /// Tuner options in effect.
    pub options: TunerOptions,
    ctx: &'a ExecutionContext<'a>,
    val: &'a [Clip],
    det_cache: Vec<DetCacheEntry>,
    proxy_cache: Vec<ProxyCacheEntry>,
    /// Simulated seconds spent on caching + trials (pre-processing cost).
    pub tuning_seconds: f64,
}

impl<'a> Tuner<'a> {
    /// Run the caching phase (§3.5.1–3.5.2).
    pub fn new(
        ctx: &'a ExecutionContext<'a>,
        val: &'a [Clip],
        theta_best: &OtifConfig,
        metric: &(dyn Fn(&[Vec<Track>]) -> f32 + Sync),
        options: TunerOptions,
    ) -> Self {
        let mut tuning_seconds = 0.0;

        // --- Detection cache: accuracy + per-frame time of each combo,
        // other modules per θ_best. Every (arch, scale) evaluation is
        // independent, so the combos run on the evaluation pool; pushing
        // results by index keeps the cache (and the f64 running sum of
        // tuning seconds) identical to the sequential loop.
        let frame_px = val
            .first()
            .map(|c| (c.scene.width as f64) * (c.scene.height as f64))
            .unwrap_or(0.0);
        let combos: Vec<(DetectorArch, f32)> = DetectorArch::ALL
            .into_iter()
            .flat_map(|arch| DetectorConfig::SCALES.into_iter().map(move |s| (arch, s)))
            .collect();
        let evaluated = evalpool::par_map(options.threads, combos, |_, (arch, scale)| {
            let mut cfg = *theta_best;
            cfg.detector = DetectorConfig::new(arch, scale);
            cfg.detector.conf_threshold = theta_best.detector.conf_threshold;
            let (_, accuracy, secs) = Pipeline::evaluate(&cfg, self_ctx(ctx), val, metric);
            let det = SimDetector::new(cfg.detector, ctx.detector_seed);
            let time_per_frame = det.windows_cost(&[otif_geom::Rect::new(
                0.0,
                0.0,
                frame_px.sqrt() as f32, // only px count matters here
                frame_px.sqrt() as f32,
            )]) + decode_cost(&ctx.cost, frame_px, scale, cfg.gap);
            (
                DetCacheEntry {
                    arch,
                    scale,
                    time_per_frame,
                    accuracy,
                },
                secs,
            )
        });
        let mut det_cache = Vec::with_capacity(evaluated.len());
        for (entry, secs) in evaluated {
            tuning_seconds += secs;
            det_cache.push(entry);
        }

        // --- Proxy cache: cached per-cell scores at every resolution on
        // (a stride of) validation frames, then runtime/recall per
        // threshold.
        let mut proxy_cache = Vec::new();
        if let (Some(proxies), Some(ws)) = (ctx.proxies, ctx.window_set) {
            // θ_best detections per sampled frame (the recall reference).
            let det_best = SimDetector::new(theta_best.detector, ctx.detector_seed);
            let ledger = otif_cv::CostLedger::new();
            let mut ref_dets: Vec<(usize, usize, Vec<otif_geom::Rect>)> = Vec::new();
            for (ci, clip) in val.iter().enumerate() {
                let mut f = 0;
                while f < clip.num_frames() {
                    let dets = det_best.detect_frame(clip, f, &ledger);
                    ref_dets.push((ci, f, dets.into_iter().map(|d| d.rect).collect()));
                    f += options.proxy_cache_stride.max(1);
                }
            }
            tuning_seconds += ledger.total();

            for (ri, proxy) in proxies.iter().enumerate() {
                // Score grids for all reference frames at this
                // resolution — each frame is independent, so the pool
                // fans them out; collecting per-frame ledger totals by
                // index reproduces the sequential f64 sum exactly.
                let frames: Vec<(usize, usize)> =
                    ref_dets.iter().map(|(ci, f, _)| (*ci, *f)).collect();
                let scored = evalpool::par_map(options.threads, frames, |_, (ci, f)| {
                    let img = Renderer::new(&val[ci]).render(f, proxy.in_w, proxy.in_h);
                    let ledger = otif_cv::CostLedger::new();
                    let g = proxy.score_cells(&img, &ctx.cost, &ledger);
                    (g, ledger.total())
                });
                let mut grids: Vec<crate::proxy::CellGrid> = Vec::with_capacity(scored.len());
                for (g, secs) in scored {
                    tuning_seconds += secs;
                    grids.push(g);
                }
                for &threshold in &options.thresholds {
                    let mut time_acc = 0.0;
                    let mut covered = 0usize;
                    let mut total = 0usize;
                    for (grid, (_, _, rects)) in grids.iter().zip(&ref_dets) {
                        let windows = group_cells(&grid.positive_cells(threshold), ws);
                        time_acc += proxy.inference_cost(&ctx.cost)
                            + windows
                                .iter()
                                .map(|w| ws.window_time(w.w, w.h))
                                .sum::<f64>();
                        for r in rects {
                            total += 1;
                            if windows.iter().any(|w| w.contains_point(&r.center())) {
                                covered += 1;
                            }
                        }
                    }
                    let n = grids.len().max(1) as f64;
                    proxy_cache.push(ProxyCacheEntry {
                        resolution_idx: ri,
                        threshold,
                        time_per_frame: time_acc / n,
                        recall: if total > 0 {
                            covered as f32 / total as f32
                        } else {
                            1.0
                        },
                    });
                }
            }
        }

        Tuner {
            options,
            ctx,
            val,
            det_cache,
            proxy_cache,
            tuning_seconds,
        }
    }

    /// Per-frame time estimate of the current configuration's detection +
    /// proxy work (used to translate "C faster overall" into module
    /// budgets).
    fn dp_time_per_frame(&self, cfg: &OtifConfig) -> f64 {
        match &cfg.proxy {
            Some(p) => self
                .proxy_cache
                .iter()
                .find(|e| e.resolution_idx == p.resolution_idx && e.threshold == p.threshold)
                .map(|e| e.time_per_frame)
                .unwrap_or(0.0),
            None => self
                .det_cache
                .iter()
                .find(|e| e.arch == cfg.detector.arch && e.scale == cfg.detector.scale)
                .map(|e| e.time_per_frame)
                .unwrap_or(0.0),
        }
    }

    /// §3.5.1: highest-accuracy (arch, resolution) at least C faster than
    /// the current detector choice.
    fn detection_candidate(&self, cur: &OtifConfig) -> Option<OtifConfig> {
        let cur_t = self
            .det_cache
            .iter()
            .find(|e| e.arch == cur.detector.arch && e.scale == cur.detector.scale)?
            .time_per_frame;
        let budget = cur_t * (1.0 - self.options.c as f64);
        // Accuracy ties break toward the slower entry: within the C
        // budget, spending more time is the conservative choice (a
        // cheaper config that merely tied on val data has less slack on
        // unseen clips).
        let best = self
            .det_cache
            .iter()
            .filter(|e| e.time_per_frame <= budget)
            .max_by(|a, b| {
                (a.accuracy, a.time_per_frame)
                    .partial_cmp(&(b.accuracy, b.time_per_frame))
                    .unwrap()
            })?;
        let mut cfg = *cur;
        cfg.detector = DetectorConfig::new(best.arch, best.scale);
        cfg.detector.conf_threshold = cur.detector.conf_threshold;
        Some(cfg)
    }

    /// §3.5.2: highest-recall (resolution, threshold) whose estimated
    /// per-frame time is at least C below the current detection+proxy
    /// time.
    fn proxy_candidate(&self, cur: &OtifConfig) -> Option<OtifConfig> {
        if self.proxy_cache.is_empty() {
            return None;
        }
        let budget = self.dp_time_per_frame(cur) * (1.0 - self.options.c as f64);
        // Recall ties break toward the slower entry (same rationale as
        // `detection_candidate`).
        let best = self
            .proxy_cache
            .iter()
            .filter(|e| e.time_per_frame <= budget)
            .max_by(|a, b| {
                (a.recall, a.time_per_frame)
                    .partial_cmp(&(b.recall, b.time_per_frame))
                    .unwrap()
            })?;
        let mut cfg = *cur;
        cfg.proxy = Some(ProxyParams {
            resolution_idx: best.resolution_idx,
            threshold: best.threshold,
        });
        Some(cfg)
    }

    /// §3.5.3: raise the sampling gap so the tracker processes C fewer
    /// frames (next power of two).
    fn tracking_candidate(&self, cur: &OtifConfig) -> Option<OtifConfig> {
        let g = next_pow2(cur.gap as f32 / (1.0 - self.options.c)).max(cur.gap * 2);
        if g > self.options.max_gap {
            return None;
        }
        let mut cfg = *cur;
        cfg.gap = g;
        // reduced-rate processing needs the recurrent tracker (SORT
        // cannot bridge large inter-frame motion, §3.4)
        if self.options.use_recurrent && self.ctx.tracker_model.is_some() {
            cfg.tracker = crate::config::TrackerKind::Recurrent;
        }
        Some(cfg)
    }

    /// Run the greedy tuning loop, returning the speed–accuracy curve
    /// (slowest configuration first).
    pub fn tune(
        &mut self,
        theta_start: OtifConfig,
        metric: &(dyn Fn(&[Vec<Track>]) -> f32 + Sync),
    ) -> Vec<CurvePoint> {
        let mut curve = Vec::new();
        let (_, acc, secs) = Pipeline::evaluate(&theta_start, self.ctx, self.val, metric);
        self.tuning_seconds += secs;
        curve.push(CurvePoint {
            config: theta_start,
            val_seconds: secs,
            accuracy: acc,
        });
        let mut cur = theta_start;

        for _ in 0..self.options.max_iters {
            let candidates: Vec<OtifConfig> = [
                self.detection_candidate(&cur),
                self.proxy_candidate(&cur),
                self.tracking_candidate(&cur),
            ]
            .into_iter()
            .flatten()
            .filter(|c| c != &cur)
            .collect();
            if candidates.is_empty() {
                break;
            }
            // Trial evaluations run on the pool; the argmax below walks
            // the points sequentially in candidate order. Val-score ties
            // break toward the *slower* candidate: every candidate
            // already cleared the C-speedup budget, so when two tie on
            // accuracy the one that kept more of the time budget is the
            // safer step (a config that tied while cutting deeper has
            // less slack on unseen clips).
            let ctx = self.ctx;
            let val = self.val;
            let points = evalpool::par_map(self.options.threads, candidates, |_, cand| {
                let (_, acc, secs) = Pipeline::evaluate(&cand, ctx, val, metric);
                CurvePoint {
                    config: cand,
                    val_seconds: secs,
                    accuracy: acc,
                }
            });
            let mut best: Option<CurvePoint> = None;
            for point in points {
                self.tuning_seconds += point.val_seconds;
                let better = match &best {
                    None => true,
                    Some(b) => {
                        point.accuracy > b.accuracy
                            || (point.accuracy == b.accuracy && point.val_seconds > b.val_seconds)
                    }
                };
                if better {
                    best = Some(point);
                }
            }
            let best = best.unwrap();
            cur = best.config;
            curve.push(best);
        }
        curve
    }
}

/// Identity helper keeping borrowck happy in `Tuner::new` (the context is
/// reused immutably across phases).
fn self_ctx<'a, 'b>(ctx: &'b ExecutionContext<'a>) -> &'b ExecutionContext<'a> {
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrackerKind;
    use otif_cv::CostModel;
    use otif_sim::{DatasetConfig, DatasetKind};

    fn count_metric(clips: &[Clip]) -> impl Fn(&[Vec<Track>]) -> f32 + Sync + '_ {
        move |tracks: &[Vec<Track>]| {
            let mut acc = 0.0;
            for (i, ts) in tracks.iter().enumerate() {
                let gt = clips[i].gt_tracks.len() as f32;
                let got = ts.len() as f32;
                if gt > 0.0 {
                    acc += (1.0 - (got - gt).abs() / gt).max(0.0);
                }
            }
            acc / tracks.len().max(1) as f32
        }
    }

    /// Tuner without trained proxies: detection + tracking modules only
    /// (the "+ Sampling Rate" ablation shape).
    #[test]
    fn tuner_produces_monotone_speed_curve() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 33).generate();
        let ctx = ExecutionContext::bare(CostModel::default(), 4);
        let metric = count_metric(&d.val);
        let theta_best = OtifConfig {
            detector: DetectorConfig::new(DetectorArch::YoloV3, 1.0),
            proxy: None,
            gap: 1,
            tracker: TrackerKind::Sort,
            refine: false,
        };
        let mut tuner = Tuner::new(&ctx, &d.val, &theta_best, &metric, TunerOptions::default());
        let curve = tuner.tune(theta_best, &metric);
        assert!(curve.len() >= 3, "curve has {} points", curve.len());
        // speed must improve monotonically along the curve
        for w in curve.windows(2) {
            assert!(
                w[1].val_seconds < w[0].val_seconds,
                "curve not monotone: {} -> {}",
                w[0].val_seconds,
                w[1].val_seconds
            );
        }
        // each step is roughly a ≥ 15 % speedup (C = 30 % target, greedy)
        for w in curve.windows(2) {
            assert!(w[1].val_seconds <= w[0].val_seconds * 0.9);
        }
        assert!(tuner.tuning_seconds > 0.0);
    }

    #[test]
    fn detection_candidate_is_faster() {
        let d = DatasetConfig::small(DatasetKind::Caldot2, 35).generate();
        let ctx = ExecutionContext::bare(CostModel::default(), 4);
        let metric = count_metric(&d.val);
        let theta_best = OtifConfig {
            detector: DetectorConfig::new(DetectorArch::MaskRcnn, 1.0),
            proxy: None,
            gap: 1,
            tracker: TrackerKind::Sort,
            refine: false,
        };
        let tuner = Tuner::new(&ctx, &d.val, &theta_best, &metric, TunerOptions::default());
        let cand = tuner.detection_candidate(&theta_best).expect("candidate");
        let t_of = |cfg: &OtifConfig| tuner.dp_time_per_frame(cfg);
        assert!(t_of(&cand) <= t_of(&theta_best) * 0.7 + 1e-12);
    }

    /// Accuracy ties in the cached detector table break toward the
    /// slower (arch, scale): within the C budget, keeping more of the
    /// time budget is the conservative pick.
    #[test]
    fn detection_candidate_ties_break_toward_slower() {
        let d = DatasetConfig::small(DatasetKind::Caldot2, 35).generate();
        let ctx = ExecutionContext::bare(CostModel::default(), 4);
        let metric = count_metric(&d.val);
        let cur = OtifConfig {
            detector: DetectorConfig::new(DetectorArch::MaskRcnn, 1.0),
            proxy: None,
            gap: 1,
            tracker: TrackerKind::Sort,
            refine: false,
        };
        let mut tuner = Tuner::new(&ctx, &d.val, &cur, &metric, TunerOptions::default());
        // synthetic cache: two candidates tied on accuracy, both within
        // the 30 % budget of the current 10.0 s/frame detector
        tuner.det_cache = vec![
            DetCacheEntry {
                arch: DetectorArch::MaskRcnn,
                scale: 1.0,
                time_per_frame: 10.0,
                accuracy: 0.9,
            },
            DetCacheEntry {
                arch: DetectorArch::YoloV3,
                scale: 0.5,
                time_per_frame: 2.0,
                accuracy: 0.8,
            },
            DetCacheEntry {
                arch: DetectorArch::YoloV3,
                scale: 1.0,
                time_per_frame: 6.0,
                accuracy: 0.8,
            },
        ];
        let cand = tuner.detection_candidate(&cur).expect("candidate");
        assert_eq!(cand.detector.arch, DetectorArch::YoloV3);
        assert_eq!(cand.detector.scale, 1.0, "tie must pick the slower entry");
    }

    #[test]
    fn tracking_candidate_doubles_gap_until_cap() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 36).generate();
        let ctx = ExecutionContext::bare(CostModel::default(), 4);
        let metric = count_metric(&d.val);
        let theta = OtifConfig {
            detector: DetectorConfig::new(DetectorArch::YoloV3, 0.5),
            proxy: None,
            gap: 1,
            tracker: TrackerKind::Sort,
            refine: false,
        };
        let tuner = Tuner::new(&ctx, &d.val, &theta, &metric, TunerOptions::default());
        let c = tuner.tracking_candidate(&theta).unwrap();
        assert_eq!(c.gap, 2);
        let mut at_cap = theta;
        at_cap.gap = 32;
        assert!(tuner.tracking_candidate(&at_cap).is_none());
    }
}
