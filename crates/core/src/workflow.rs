//! The end-to-end OTIF workflow (§3.1, Figure 1).
//!
//! Given a dataset with training and validation splits and a user-provided
//! accuracy metric, [`Otif::prepare`]:
//!
//! 1. selects the best-accuracy configuration θ_best on the validation
//!    split;
//! 2. runs θ_best over the training split to obtain pseudo-labels;
//! 3. trains segmentation proxy models at five input resolutions;
//! 4. selects the fixed detector window sizes W (k = 3);
//! 5. trains the recurrent tracking model with gap sampling;
//! 6. builds the track-refinement cluster index (fixed cameras);
//! 7. runs the joint tuner, producing the speed–accuracy curve Θ.
//!
//! The user then picks a point on the curve ([`Otif::pick_config`]) and
//! executes it over the full dataset ([`Otif::execute`]).

use crate::config::{OtifConfig, TrackerKind};
use crate::pipeline::{ExecutionContext, Pipeline};
use crate::proxy::{SegProxyModel, PROXY_SCALES};
use crate::refine::RefineIndex;
use crate::theta::select_theta_best;
use crate::tuner::{CurvePoint, Tuner, TunerOptions};
use crate::windows::{cells_of_rects, select_window_sizes, WindowSet};
use otif_cv::{Component, CostLedger, CostModel, Detection};
use otif_sim::{Clip, Dataset};
use otif_track::{train_tracker_model, Track, TrackerModel, TrainConfig};

/// Knobs for [`Otif::prepare`].
#[derive(Debug, Clone)]
pub struct OtifOptions {
    /// Seed for models, detector noise and sampling.
    pub seed: u64,
    /// Simulated cost-model constants.
    pub cost: CostModel,
    /// Number of fixed window sizes k (the paper uses 3).
    pub k_windows: usize,
    /// Training steps per proxy model.
    pub proxy_train_steps: usize,
    /// Proxy-model learning rate.
    pub proxy_lr: f32,
    /// Which [`PROXY_SCALES`] indices to train (all five by default;
    /// tests may restrict to one or two for speed).
    pub proxy_scale_indices: Vec<usize>,
    /// Recurrent-tracker training hyper-parameters.
    pub tracker_train: TrainConfig,
    /// Joint-tuner options.
    pub tuner: TunerOptions,
    /// Whether the tuner may enable the proxy module at all (off for the
    /// "+ Recurrent Tracker" ablation level).
    pub enable_proxy: bool,
    /// Whether tracking-module tuning (gap) and the recurrent tracker are
    /// enabled (off for the "Detector Only" ablation level).
    pub enable_tracking: bool,
    /// Whether the recurrent tracker replaces SORT (off for the
    /// "+ Sampling Rate" ablation level).
    pub enable_recurrent: bool,
}

impl Default for OtifOptions {
    fn default() -> Self {
        OtifOptions {
            seed: 0,
            cost: CostModel::default(),
            k_windows: 3,
            proxy_train_steps: 500,
            proxy_lr: 0.01,
            proxy_scale_indices: (0..PROXY_SCALES.len()).collect(),
            tracker_train: TrainConfig::default(),
            tuner: TunerOptions::default(),
            enable_proxy: true,
            enable_tracking: true,
            enable_recurrent: true,
        }
    }
}

impl OtifOptions {
    /// A configuration small enough for unit tests: one proxy resolution,
    /// few training steps.
    pub fn fast_test() -> Self {
        OtifOptions {
            proxy_train_steps: 150,
            proxy_scale_indices: vec![2],
            tracker_train: TrainConfig {
                steps: 150,
                ..TrainConfig::default()
            },
            tuner: TunerOptions {
                max_iters: 6,
                ..TunerOptions::default()
            },
            ..OtifOptions::default()
        }
    }
}

/// A prepared OTIF instance: θ_best, trained models, window sizes,
/// refinement index and the tuned speed–accuracy curve.
pub struct Otif {
    /// The options preparation ran with.
    pub options: OtifOptions,
    /// Best-accuracy configuration (pseudo-label source, 3.3).
    pub theta_best: OtifConfig,
    /// Validation accuracy achieved by theta_best.
    pub theta_best_accuracy: f32,
    /// Trained proxies aligned with [`PROXY_SCALES`]; untrained scales are
    /// omitted from `proxy_scale_indices` and never referenced by tuned
    /// configurations.
    pub proxies: Vec<SegProxyModel>,
    /// Fixed detector window sizes W (3.3).
    pub window_set: WindowSet,
    /// Trained recurrent tracking model (3.4).
    pub tracker_model: TrackerModel,
    /// Track-refinement cluster index (fixed cameras only).
    pub refine_index: Option<RefineIndex>,
    /// Speed–accuracy curve from the tuner (slowest first).
    pub curve: Vec<CurvePoint>,
    /// One-time pre-processing costs (simulated seconds per component) —
    /// the upper half of Figure 6.
    pub prep_ledger: CostLedger,
    frame_w: f32,
    frame_h: f32,
}

impl Otif {
    /// Run the full preparation workflow on a dataset.
    ///
    /// `metric` maps per-clip track sets (aligned with `dataset.val`) to
    /// an accuracy in `[0, 1]`.
    pub fn prepare(
        dataset: &Dataset,
        metric: &(dyn Fn(&[Vec<Track>]) -> f32 + Sync),
        options: OtifOptions,
    ) -> Otif {
        let prep = CostLedger::new();
        let scene = &dataset.scene;
        let (fw, fh) = (scene.width as f32, scene.height as f32);

        // The paper fine-tunes the object detector per dataset; that
        // dominates pre-processing in Figure 6. Simulated flat cost.
        prep.charge(Component::TrainDetector, 1800.0);

        // 1. θ_best on the validation split.
        let bare = ExecutionContext::bare(options.cost, options.seed);
        let (theta_best, theta_best_accuracy, trial_secs) =
            select_theta_best(&dataset.val, &bare, metric, options.tuner.c);
        prep.charge(Component::Tuner, trial_secs);

        // 2. θ_best over the training split: pseudo-labels.
        let mut train_tracks: Vec<Vec<Track>> = Vec::new();
        let mut train_dets: Vec<Vec<Vec<Detection>>> = Vec::new();
        {
            let ledger = CostLedger::new();
            for clip in &dataset.train {
                let (tracks, per_frame) =
                    Pipeline::run_clip_detailed(&theta_best, &bare, clip, &ledger);
                let mut by_frame = vec![Vec::new(); clip.num_frames()];
                for (f, dets) in per_frame {
                    by_frame[f] = dets;
                }
                train_tracks.push(tracks);
                train_dets.push(by_frame);
            }
            prep.charge(Component::Tuner, ledger.execution_total());
        }

        // 3. Proxy models (only when the proxy module is enabled).
        let mut proxies = Vec::new();
        if options.enable_proxy {
            let clips: Vec<&Clip> = dataset.train.iter().collect();
            for &si in &options.proxy_scale_indices {
                let mut m = SegProxyModel::new(
                    scene.width as usize,
                    scene.height as usize,
                    PROXY_SCALES[si],
                    options.seed ^ (si as u64) << 8,
                );
                m.train(
                    &clips,
                    &train_dets,
                    options.proxy_train_steps,
                    options.proxy_lr,
                    options.seed ^ 0x9E37,
                );
                proxies.push(m);
            }
            // Paper: all five models train in < 10 minutes.
            prep.charge(Component::TrainProxy, 120.0 * proxies.len() as f64);
        }

        // 4. Fixed window sizes from θ_best training detections (perfect-
        // proxy assumption).
        let frames_cells: Vec<Vec<(usize, usize)>> = train_dets
            .iter()
            .flat_map(|per_frame| {
                per_frame.iter().filter(|d| !d.is_empty()).map(|dets| {
                    cells_of_rects(&dets.iter().map(|d| d.rect).collect::<Vec<_>>(), fw, fh)
                })
            })
            .take(120)
            .collect();
        let det_arch = theta_best.detector.arch;
        let window_set = select_window_sizes(
            fw,
            fh,
            &frames_cells,
            options.k_windows,
            det_arch.per_px(),
            det_arch.per_call(),
        );
        prep.charge(Component::WindowSelect, 3.0);

        // 5. Recurrent tracker.
        let (tracker_model, _) = train_tracker_model(
            &train_tracks,
            fw,
            fh,
            TrainConfig {
                seed: options.seed,
                ..options.tracker_train
            },
        );
        prep.charge(Component::TrainTracker, 300.0);

        // 6. Refinement index (fixed cameras only).
        let refine_index = if dataset.kind.fixed_camera() {
            let all: Vec<Track> = train_tracks.iter().flatten().cloned().collect();
            Some(RefineIndex::build(&all, fw, fh, None))
        } else {
            None
        };

        // 7. Joint tuning from θ_best. The starting point keeps SORT (at
        // gap 1 SORT and the recurrent tracker are equivalent, and the
        // paper notes methods share the same slowest point); the tuner's
        // tracking module switches to the recurrent tracker as soon as
        // the gap grows (when enabled).
        let mut theta_start = theta_best;
        theta_start.tracker = TrackerKind::Sort;
        theta_start.refine = refine_index.is_some();
        if !options.enable_tracking {
            theta_start.gap = 1;
        }
        let ctx = ExecutionContext {
            cost: options.cost,
            detector_seed: options.seed,
            proxies: if proxies.is_empty() {
                None
            } else {
                Some(&proxies)
            },
            window_set: if proxies.is_empty() {
                None
            } else {
                Some(&window_set)
            },
            tracker_model: Some(&tracker_model),
            refine_index: refine_index.as_ref(),
        };
        let mut tuner_opts = options.tuner.clone();
        tuner_opts.use_recurrent = options.enable_recurrent;
        if !options.enable_tracking {
            tuner_opts.max_gap = 1; // disables tracking candidates
        }
        let mut tuner = Tuner::new(&ctx, &dataset.val, &theta_best, metric, tuner_opts);
        let curve = tuner.tune(theta_start, metric);
        prep.charge(Component::Tuner, tuner.tuning_seconds);

        Otif {
            options,
            theta_best,
            theta_best_accuracy,
            proxies,
            window_set,
            tracker_model,
            refine_index,
            curve,
            prep_ledger: prep,
            frame_w: fw,
            frame_h: fh,
        }
    }

    /// Execution context referencing this instance's trained artifacts.
    pub fn context(&self) -> ExecutionContext<'_> {
        ExecutionContext {
            cost: self.options.cost,
            detector_seed: self.options.seed,
            proxies: if self.proxies.is_empty() {
                None
            } else {
                Some(&self.proxies)
            },
            window_set: if self.proxies.is_empty() {
                None
            } else {
                Some(&self.window_set)
            },
            tracker_model: Some(&self.tracker_model),
            refine_index: self.refine_index.as_ref(),
        }
    }

    /// The fastest curve configuration whose validation accuracy is within
    /// `max_drop` of the best accuracy on the curve (the paper's results
    /// use `max_drop = 0.05`).
    pub fn pick_config(&self, max_drop: f32) -> &CurvePoint {
        let best = self
            .curve
            .iter()
            .map(|p| p.accuracy)
            .fold(f32::NEG_INFINITY, f32::max);
        self.curve
            .iter()
            .filter(|p| p.accuracy >= best - max_drop)
            .min_by(|a, b| a.val_seconds.partial_cmp(&b.val_seconds).unwrap())
            .expect("curve is never empty")
    }

    /// Execute a configuration over arbitrary clips, returning per-clip
    /// tracks and the execution ledger (Figure 6's lower half).
    pub fn execute(&self, config: &OtifConfig, clips: &[Clip]) -> (Vec<Vec<Track>>, CostLedger) {
        let ledger = CostLedger::new();
        let ctx = self.context();
        let tracks = Pipeline::run_split(config, &ctx, clips, &ledger);
        (tracks, ledger)
    }

    /// Native frame dimensions of the prepared dataset.
    pub fn frame_dims(&self) -> (f32, f32) {
        (self.frame_w, self.frame_h)
    }

    /// Snapshot every trained artifact into a serializable bundle — the
    /// "deployment" output of the pre-processing workflow.
    pub fn to_artifacts(&self) -> OtifArtifacts {
        OtifArtifacts {
            theta_best: self.theta_best,
            theta_best_accuracy: self.theta_best_accuracy,
            proxies: self.proxies.clone(),
            window_set: self.window_set.clone(),
            tracker_model: self.tracker_model.clone(),
            refine_clusters: self.refine_index.as_ref().map(|idx| idx.clusters.clone()),
            curve: self.curve.clone(),
            frame_w: self.frame_w,
            frame_h: self.frame_h,
        }
    }

    /// Restore a prepared instance from serialized artifacts (no
    /// re-training). The preparation ledger starts empty.
    pub fn from_artifacts(artifacts: OtifArtifacts, options: OtifOptions) -> Otif {
        let refine_index = artifacts
            .refine_clusters
            .map(|c| RefineIndex::from_clusters(c, artifacts.frame_w, artifacts.frame_h));
        Otif {
            options,
            theta_best: artifacts.theta_best,
            theta_best_accuracy: artifacts.theta_best_accuracy,
            proxies: artifacts.proxies,
            window_set: artifacts.window_set,
            tracker_model: artifacts.tracker_model,
            refine_index,
            curve: artifacts.curve,
            prep_ledger: CostLedger::new(),
            frame_w: artifacts.frame_w,
            frame_h: artifacts.frame_h,
        }
    }
}

/// Serializable snapshot of a prepared OTIF instance: train once during
/// pre-processing, persist, and reload for execution elsewhere.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct OtifArtifacts {
    /// Best-accuracy configuration.
    pub theta_best: OtifConfig,
    /// Validation accuracy of theta_best.
    pub theta_best_accuracy: f32,
    /// Trained proxy models.
    pub proxies: Vec<SegProxyModel>,
    /// Fixed detector window sizes.
    pub window_set: WindowSet,
    /// Trained recurrent tracker.
    pub tracker_model: TrackerModel,
    /// Refinement clusters (fixed cameras), if built.
    pub refine_clusters: Option<Vec<crate::refine::PathCluster>>,
    /// Tuned speed-accuracy curve.
    pub curve: Vec<CurvePoint>,
    /// Native frame width.
    pub frame_w: f32,
    /// Native frame height.
    pub frame_h: f32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_sim::{DatasetConfig, DatasetKind};

    fn count_metric(clips: &[Clip]) -> impl Fn(&[Vec<Track>]) -> f32 + Sync + '_ {
        move |tracks: &[Vec<Track>]| {
            let mut acc = 0.0;
            for (i, ts) in tracks.iter().enumerate() {
                let gt = clips[i].gt_tracks.len() as f32;
                let got = ts.len() as f32;
                if gt > 0.0 {
                    acc += (1.0 - (got - gt).abs() / gt).max(0.0);
                }
            }
            acc / tracks.len().max(1) as f32
        }
    }

    #[test]
    fn full_workflow_on_tiny_dataset() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 41).generate();
        let metric = count_metric(&d.val);
        let otif = Otif::prepare(&d, &metric, OtifOptions::fast_test());

        // artifacts exist
        assert_eq!(otif.proxies.len(), 1);
        assert!(!otif.window_set.sizes.is_empty());
        assert!(otif.refine_index.is_some(), "caldot is a fixed camera");
        assert!(otif.curve.len() >= 2, "curve: {} points", otif.curve.len());

        // curve is monotone in speed
        for w in otif.curve.windows(2) {
            assert!(w[1].val_seconds < w[0].val_seconds);
        }

        // pre-processing ledger is populated with one-time costs only
        assert!(otif.prep_ledger.preprocessing_total() > 0.0);
        assert_eq!(otif.prep_ledger.execution_total(), 0.0);

        // picking and executing a configuration works end to end
        let point = otif.pick_config(0.05);
        let (tracks, ledger) = otif.execute(&point.config, &d.test);
        assert_eq!(tracks.len(), d.test.len());
        assert!(ledger.execution_total() > 0.0);
        let test_metric = count_metric(&d.test);
        let acc = test_metric(&tracks);
        assert!(acc > 0.4, "test accuracy {acc}");
    }

    #[test]
    fn pick_config_prefers_fastest_within_band() {
        let d = DatasetConfig::small(DatasetKind::Caldot2, 43).generate();
        let metric = count_metric(&d.val);
        let otif = Otif::prepare(&d, &metric, OtifOptions::fast_test());
        let strict = otif.pick_config(0.0);
        let loose = otif.pick_config(1.0); // any accuracy allowed
        assert!(loose.val_seconds <= strict.val_seconds);
        // loose pick is the global fastest point
        let fastest = otif
            .curve
            .iter()
            .map(|p| p.val_seconds)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(loose.val_seconds, fastest);
    }
}
