#![warn(missing_docs)]

//! OTIF core: the paper's primary contribution.
//!
//! OTIF is a video pre-processor that extracts *all* object tracks from a
//! video dataset so that downstream queries run in milliseconds by
//! post-processing tracks, with no further decoding or ML inference. The
//! execution pipeline (§3.2) composes three modules, each exposing tunable
//! parameters:
//!
//! 1. a **segmentation proxy model** ([`proxy`]) that scores each 32×32
//!    frame cell for object presence at a low input resolution, so the
//!    detector only runs in small windows ([`grouping`], [`windows`]);
//! 2. a **detection module** (the simulated detectors from `otif-cv`),
//!    parameterized by architecture, input resolution and confidence
//!    threshold;
//! 3. a **recurrent reduced-rate tracking module** (from `otif-track`),
//!    parameterized by the sampling gap `g`, plus cluster-based track
//!    **refinement** ([`refine`]) that replaces Miris's extra decoding.
//!
//! The [`tuner`] ties the modules together: starting from the
//! best-accuracy configuration θ_best ([`theta`]), it greedily asks each
//! module for a ~C-faster candidate and keeps the most accurate one,
//! producing a speed–accuracy curve close to the Pareto frontier (§3.5).
//!
//! [`workflow::Otif`] packages the whole §3.1 workflow: train proxies and
//! the tracker on the training split, tune on the validation split, then
//! execute a chosen configuration over unseen video.

pub mod config;
pub mod detnet;
pub mod evalpool;
pub mod grouping;
pub mod pipeline;
pub mod proxy;
pub mod refine;
pub mod stages;
pub mod theta;
pub mod tuner;
pub mod windows;
pub mod workflow;

pub use config::{OtifConfig, ProxyParams, TrackerKind};
pub use detnet::{digest_tensor, fnv1a, fold_digest, WindowNet, DIGEST_SEED};
pub use evalpool::par_map;
pub use grouping::group_cells;
pub use pipeline::{ExecutionContext, Pipeline};
pub use proxy::{CellGrid, SegProxyModel, PROXY_SCALES};
pub use refine::RefineIndex;
pub use stages::FrameTracker;
pub use theta::select_theta_best;
pub use tuner::{CurvePoint, Tuner, TunerOptions};
pub use windows::{select_window_sizes, WindowSet};
pub use workflow::{Otif, OtifOptions};
