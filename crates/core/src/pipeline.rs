//! The OTIF execution pipeline (§3.2, Figure 2).
//!
//! For each sampled frame (1 in every `g`): decode, run the segmentation
//! proxy (if configured) to choose detector windows, run the detector in
//! those windows, and feed detections to the tracker. After the last
//! frame, single-detection tracks are pruned and (for fixed cameras)
//! track endpoints are refined.

use crate::config::OtifConfig;
use crate::evalpool;
use crate::proxy::SegProxyModel;
use crate::refine::RefineIndex;
use crate::stages::{
    charge_decode, charge_tracker_step, finalize_tracks, select_windows, FrameTracker,
};
use crate::windows::WindowSet;
use otif_cv::{Component, CostLedger, CostModel, Detection, SimDetector};
use otif_sim::{Clip, Renderer};
use otif_track::{RecurrentTracker, Track, TrackerModel};

/// Everything a pipeline execution needs besides the configuration:
/// trained models, the fixed window set, the refinement index, the cost
/// model and the detector noise seed.
pub struct ExecutionContext<'a> {
    /// Simulated cost-model constants.
    pub cost: CostModel,
    /// Detector noise seed.
    pub detector_seed: u64,
    /// Trained proxy models, indexed by [`crate::proxy::PROXY_SCALES`]
    /// position. Configurations with `proxy: Some(_)` require this.
    pub proxies: Option<&'a [SegProxyModel]>,
    /// Fixed window sizes; required when a proxy is configured.
    pub window_set: Option<&'a WindowSet>,
    /// Trained recurrent tracker; required for `TrackerKind::Recurrent`.
    pub tracker_model: Option<&'a TrackerModel>,
    /// Refinement index; used when `config.refine`.
    pub refine_index: Option<&'a RefineIndex>,
}

impl<'a> ExecutionContext<'a> {
    /// A context with no trained artifacts (θ_best-style executions:
    /// full-frame detection + SORT only).
    pub fn bare(cost: CostModel, detector_seed: u64) -> Self {
        ExecutionContext {
            cost,
            detector_seed,
            proxies: None,
            window_set: None,
            tracker_model: None,
            refine_index: None,
        }
    }
}

/// Simulated decode cost of one sampled frame.
///
/// Decoding at the detector's input scale is cheaper (ffmpeg-style scaled
/// decode), but sampling 1-in-g frames still pays for the P-frame chain
/// from the last keyframe, so the saving is sub-linear in `g` — the
/// behaviour measured for real in `otif-codec`'s tests.
pub fn decode_cost(cost: &CostModel, native_px: f64, scale: f32, gap: usize) -> f64 {
    let chain = 1.0 + 0.25 * (gap.saturating_sub(1).min(15)) as f64;
    cost.decode_per_frame + native_px * (scale as f64) * (scale as f64) * cost.decode_per_px * chain
}

/// The pipeline executor.
pub struct Pipeline;

impl Pipeline {
    /// Execute `config` over one clip, returning extracted tracks and the
    /// detections of each processed frame (indexed by frame number).
    pub fn run_clip_detailed(
        config: &OtifConfig,
        ctx: &ExecutionContext,
        clip: &Clip,
        ledger: &CostLedger,
    ) -> (Vec<Track>, Vec<(usize, Vec<Detection>)>) {
        let detector = SimDetector::new(config.detector, ctx.detector_seed);
        let mut tracker = FrameTracker::new(config, ctx);
        let native_px = (clip.scene.width as f64) * (clip.scene.height as f64);
        let renderer = Renderer::new(clip);
        let mut per_frame = Vec::new();

        let mut f = 0usize;
        while f < clip.num_frames() {
            charge_decode(config, ctx, native_px, ledger);
            let windows =
                select_windows(config, ctx, &renderer, clip.scene.frame_rect(), f, ledger);
            let dets = if windows.is_empty() {
                Vec::new()
            } else {
                detector.detect_windows(clip, f, &windows, ledger)
            };
            charge_tracker_step(ctx, dets.len(), ledger);
            per_frame.push((f, dets.clone()));
            tracker.step(f, dets);
            f += config.gap;
        }

        let tracks = finalize_tracks(config, ctx, clip, tracker.finish(), ledger);
        (tracks, per_frame)
    }

    /// Variable-rate variant (the Miris-style design OTIF evaluated and
    /// rejected, §3.4): instead of the fixed gap `config.gap`, the gap
    /// adapts between 1 and `config.gap` based on the recurrent tracker's
    /// matching confidence — halving when the weakest accepted match
    /// falls below `confidence_floor`, doubling otherwise.
    ///
    /// Exists for the variable-vs-fixed-rate ablation; the paper found
    /// fixed gaps comparable in accuracy once the tracker is recurrent,
    /// which `ablation_varrate` reproduces.
    pub fn run_clip_variable_rate(
        config: &OtifConfig,
        ctx: &ExecutionContext,
        clip: &Clip,
        ledger: &CostLedger,
        confidence_floor: f32,
    ) -> Vec<Track> {
        let detector = SimDetector::new(config.detector, ctx.detector_seed);
        let model = ctx
            .tracker_model
            .expect("variable-rate tracking requires the recurrent model");
        let mut tracker = RecurrentTracker::new(model.clone());
        let native_px = (clip.scene.width as f64) * (clip.scene.height as f64);
        let max_gap = config.gap.max(1);
        let mut gap = max_gap;
        let mut f = 0usize;
        while f < clip.num_frames() {
            ledger.charge(
                Component::Decode,
                decode_cost(&ctx.cost, native_px, config.detector.scale, gap),
            );
            let dets = detector.detect_frame(clip, f, ledger);
            ledger.charge(
                Component::Tracker,
                ctx.cost.tracker_per_frame + dets.len() as f64 * ctx.cost.tracker_per_det,
            );
            // measure the weakest plausible match before stepping
            let mut weakest: f32 = 1.0;
            if tracker.num_active() > 0 {
                for d in &dets {
                    let best = tracker.best_match_prob(f, d);
                    if best > 0.0 {
                        weakest = weakest.min(best);
                    }
                }
            }
            tracker.step(f, dets);
            if weakest < confidence_floor {
                gap = (gap / 2).max(1);
            } else {
                gap = (gap * 2).min(max_gap);
            }
            f += gap;
        }
        let mut tracks = tracker.finish();
        if config.refine {
            if let Some(idx) = ctx.refine_index {
                for t in tracks.iter_mut() {
                    idx.refine(t);
                }
                ledger.charge(
                    Component::Refinement,
                    tracks.len() as f64 * ctx.cost.refine_per_track,
                );
            }
        }
        tracks
    }

    /// Execute `config` over one clip, returning just the tracks.
    pub fn run_clip(
        config: &OtifConfig,
        ctx: &ExecutionContext,
        clip: &Clip,
        ledger: &CostLedger,
    ) -> Vec<Track> {
        Self::run_clip_detailed(config, ctx, clip, ledger).0
    }

    /// Execute over a split of clips on the work-stealing evaluation
    /// pool. Returns tracks per clip, in clip order.
    ///
    /// Each clip runs against a private ledger; the private ledgers are
    /// absorbed into `ledger` in clip order after all clips finish, so
    /// the shared ledger ends up byte-identical to a sequential run no
    /// matter how many threads participated or how work was stolen.
    pub fn run_split(
        config: &OtifConfig,
        ctx: &ExecutionContext,
        clips: &[Clip],
        ledger: &CostLedger,
    ) -> Vec<Vec<Track>> {
        let per_clip = evalpool::par_map(0, clips.iter().collect(), |_, clip| {
            let local = CostLedger::new();
            let tracks = Self::run_clip(config, ctx, clip, &local);
            (tracks, local)
        });
        let mut out = Vec::with_capacity(per_clip.len());
        for (tracks, local) in per_clip {
            ledger.absorb(&local);
            out.push(tracks);
        }
        out
    }

    /// Run a split and measure: returns `(tracks per clip, accuracy,
    /// simulated execution seconds)` under the given per-split metric.
    pub fn evaluate(
        config: &OtifConfig,
        ctx: &ExecutionContext,
        clips: &[Clip],
        metric: &(dyn Fn(&[Vec<Track>]) -> f32 + Sync),
    ) -> (Vec<Vec<Track>>, f32, f64) {
        let ledger = CostLedger::new();
        let tracks = Self::run_split(config, ctx, clips, &ledger);
        let acc = metric(&tracks);
        (tracks, acc, ledger.execution_total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrackerKind;
    use otif_cv::{DetectorArch, DetectorConfig};
    use otif_sim::{DatasetConfig, DatasetKind};

    fn dataset() -> otif_sim::Dataset {
        DatasetConfig::small(DatasetKind::Caldot1, 11).generate()
    }

    fn base_config() -> OtifConfig {
        OtifConfig {
            detector: DetectorConfig::new(DetectorArch::YoloV3, 1.0),
            proxy: None,
            gap: 1,
            tracker: TrackerKind::Sort,
            refine: false,
        }
    }

    #[test]
    fn pipeline_extracts_plausible_tracks() {
        let d = dataset();
        let ctx = ExecutionContext::bare(CostModel::default(), 3);
        let ledger = CostLedger::new();
        let tracks = Pipeline::run_clip(&base_config(), &ctx, &d.test[0], &ledger);
        let gt = d.test[0].gt_tracks.len();
        assert!(!tracks.is_empty());
        // within 2x of ground truth count at full rate/resolution
        assert!(
            tracks.len() as f32 > gt as f32 * 0.5 && tracks.len() as f32 <= gt as f32 * 2.0,
            "{} tracks vs {gt} gt",
            tracks.len()
        );
    }

    #[test]
    fn gap_reduces_cost_and_processed_frames() {
        let d = dataset();
        let ctx = ExecutionContext::bare(CostModel::default(), 3);
        let mut cfg = base_config();
        let l1 = CostLedger::new();
        let (_, pf1) = Pipeline::run_clip_detailed(&cfg, &ctx, &d.test[0], &l1);
        cfg.gap = 4;
        let l4 = CostLedger::new();
        let (_, pf4) = Pipeline::run_clip_detailed(&cfg, &ctx, &d.test[0], &l4);
        assert!(pf4.len() * 3 < pf1.len());
        assert!(l4.execution_total() < l1.execution_total() * 0.5);
        // but decode savings are sub-linear in the gap
        assert!(l4.get(Component::Decode) > l1.get(Component::Decode) / 4.0);
    }

    #[test]
    fn lower_resolution_reduces_detector_cost() {
        let d = dataset();
        let ctx = ExecutionContext::bare(CostModel::default(), 3);
        let mut cfg = base_config();
        let l1 = CostLedger::new();
        Pipeline::run_clip(&cfg, &ctx, &d.test[0], &l1);
        cfg.detector.scale = 0.5;
        let l2 = CostLedger::new();
        Pipeline::run_clip(&cfg, &ctx, &d.test[0], &l2);
        // pixel cost falls 4×; the per-invocation launch overhead does not,
        // so the overall detector cost lands between 4× and 1×
        assert!(l2.get(Component::Detector) < l1.get(Component::Detector) * 0.5);
        assert!(l2.get(Component::Detector) > l1.get(Component::Detector) * 0.2);
    }

    #[test]
    fn run_split_is_deterministic_despite_parallelism() {
        let d = dataset();
        let ctx = ExecutionContext::bare(CostModel::default(), 3);
        let cfg = base_config();
        let a = Pipeline::run_split(&cfg, &ctx, &d.test, &CostLedger::new());
        let b = Pipeline::run_split(&cfg, &ctx, &d.test, &CostLedger::new());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), y.len());
            for (tx, ty) in x.iter().zip(y) {
                assert_eq!(tx.dets.len(), ty.dets.len());
            }
        }
    }

    #[test]
    fn evaluate_reports_metric_and_time() {
        let d = dataset();
        let ctx = ExecutionContext::bare(CostModel::default(), 3);
        let metric = |tracks: &[Vec<Track>]| -> f32 { tracks.len() as f32 };
        let (tracks, acc, secs) = Pipeline::evaluate(&base_config(), &ctx, &d.val, &metric);
        assert_eq!(tracks.len(), d.val.len());
        assert_eq!(acc, d.val.len() as f32);
        assert!(secs > 0.0);
    }

    #[test]
    #[should_panic(expected = "requires a trained model")]
    fn recurrent_without_model_panics() {
        let d = dataset();
        let ctx = ExecutionContext::bare(CostModel::default(), 3);
        let mut cfg = base_config();
        cfg.tracker = TrackerKind::Recurrent;
        Pipeline::run_clip(&cfg, &ctx, &d.test[0], &CostLedger::new());
    }

    #[test]
    fn decode_cost_sublinear_in_gap() {
        let cm = CostModel::default();
        let c1 = decode_cost(&cm, 100_000.0, 1.0, 1);
        let c32 = decode_cost(&cm, 100_000.0, 1.0, 32);
        // per-sampled-frame cost grows with the gap (chain decode) …
        assert!(c32 > c1);
        // … but total at gap 32 is far below total at gap 1
        assert!(c32 / 32.0 < c1 * 0.5);
    }
}
