//! A deterministic detector-forward surrogate for wall-clock
//! measurement.
//!
//! The reproduction's [`otif_cv::SimDetector`] produces detections and
//! ledger charges analytically — there is no network to run, so the
//! cross-stream [`DetectorBatcher`](../../otif_engine) historically
//! coalesced *accounting* only and "batched" rounds cost exactly as
//! much wall-clock as looped ones. `WindowNet` closes that gap: a small
//! convolutional network (the proxy backbone shape, seeded
//! deterministically from the detector configuration) that is actually
//! executed once per detector window, either looped per stream or as
//! one genuinely batched forward per same-size chunk of a batcher
//! round. Its outputs never influence detections or simulated charges —
//! they exist so that batched-vs-looped wall-clock is measurable and so
//! the bitwise-equality contract between the two execution paths is
//! testable end to end (via [`digest_tensor`] folds).

use otif_cv::DetectorConfig;
use otif_geom::Rect;
use otif_nn::kernels;
use otif_nn::{Activation, BatchTensor3, Conv2d, KernelPath, Tensor3, XavierInit};
use otif_sim::Renderer;

/// Surrogate input side length bounds: window crops are resampled to
/// `window_size × detector_scale`, clamped per dimension to this range
/// (real detectors letterbox windows to a fixed input; the clamp keeps
/// debug-build test runs fast while leaving every production shape
/// distinct).
const INPUT_MIN: usize = 8;
/// Upper clamp for surrogate input dimensions.
const INPUT_MAX: usize = 96;

/// FNV-1a offset basis — the seed of every digest fold.
pub const DIGEST_SEED: u64 = 0xcbf29ce484222325;
const DIGEST_PRIME: u64 = 0x100000001b3;

/// FNV-1a over a tensor's `f32` bit patterns (shape included), so two
/// tensors digest equal iff they are bitwise identical.
pub fn digest_tensor(t: &Tensor3) -> u64 {
    let mut h = DIGEST_SEED;
    for dim in [t.c as u64, t.h as u64, t.w as u64] {
        h = fold_digest(h, dim);
    }
    for v in &t.data {
        h = fold_digest(h, v.to_bits() as u64);
    }
    h
}

/// Fold one 64-bit word into a running FNV-1a digest.
pub fn fold_digest(acc: u64, word: u64) -> u64 {
    let mut h = acc;
    for b in word.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(DIGEST_PRIME);
    }
    h
}

/// FNV-1a 64-bit over a byte slice — stable across runs and platforms.
/// Shared by every content fingerprint in the system (store payloads,
/// journal records, run checkpoints).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = DIGEST_SEED;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(DIGEST_PRIME);
    }
    h
}

/// The surrogate network: the five-layer strided encoder + 1×1 decoder
/// stack of the segmentation proxy, run at per-window input shapes.
/// Weights are Xavier-initialized from a seed derived from the detector
/// configuration and the run's detector seed, so every stream (and both
/// execution paths) holds bitwise-identical parameters.
#[derive(Debug, Clone)]
pub struct WindowNet {
    layers: Vec<Conv2d>,
    /// Detector input scale (fraction of native resolution per linear
    /// dimension) — the same scale the cost model charges for.
    pub scale: f32,
}

impl WindowNet {
    /// Build the surrogate for a detector configuration.
    pub fn new(config: &DetectorConfig, detector_seed: u64) -> Self {
        // decorrelate from other consumers of detector_seed without
        // depending on anything non-deterministic
        let arch_salt = config
            .arch
            .name()
            .bytes()
            .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
        let mut init = XavierInit::new(
            detector_seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(arch_salt),
        );
        let chans = [1usize, 3, 6, 6, 8, 8];
        let mut layers: Vec<Conv2d> = (0..5)
            .map(|i| {
                Conv2d::new(
                    chans[i],
                    chans[i + 1],
                    3,
                    2,
                    1,
                    Activation::LeakyRelu,
                    &mut init,
                )
            })
            .collect();
        layers.push(Conv2d::new(8, 6, 1, 1, 0, Activation::LeakyRelu, &mut init));
        layers.push(Conv2d::new(6, 1, 1, 1, 0, Activation::Linear, &mut init));
        WindowNet {
            layers,
            scale: config.scale,
        }
    }

    /// Surrogate input dimensions `(w, h)` for a rounded window size.
    /// Deterministic in the rounded size alone, so the looped and
    /// batched paths — and every stream — agree on the shape.
    pub fn input_dims(&self, rounded: (u32, u32)) -> (usize, usize) {
        let d = |v: u32| ((v as f32 * self.scale).round() as usize).clamp(INPUT_MIN, INPUT_MAX);
        (d(rounded.0), d(rounded.1))
    }

    /// Render the window's crop at the surrogate input resolution and
    /// wrap it as a single-channel tensor.
    pub fn materialize(
        &self,
        renderer: &Renderer,
        frame: usize,
        window: &Rect,
        rounded: (u32, u32),
    ) -> Tensor3 {
        let (iw, ih) = self.input_dims(rounded);
        let img = renderer.render_region(frame, window.x, window.y, window.w, window.h, iw, ih);
        Tensor3::from_vec(1, ih, iw, img.data)
    }

    /// Looped forward of one window input (Auto kernel path), into a
    /// caller-owned tensor; scratch-pooled intermediates.
    pub fn forward_into(&self, x: &Tensor3, out: &mut Tensor3) {
        let mut a = Tensor3 {
            c: x.c,
            h: x.h,
            w: x.w,
            data: kernels::take_buf(0),
        };
        a.data.clear();
        a.data.extend_from_slice(&x.data);
        let mut b = Tensor3 {
            c: 0,
            h: 0,
            w: 0,
            data: kernels::take_buf(0),
        };
        for l in &self.layers {
            l.infer_path_into(&a, &mut b, KernelPath::Auto);
            std::mem::swap(&mut a, &mut b);
        }
        out.reset(a.c, a.h, a.w);
        out.data.copy_from_slice(&a.data);
        kernels::put_buf(a.data);
        kernels::put_buf(b.data);
    }

    /// Batched forward over same-shape window inputs: one im2col + one
    /// cache-blocked GEMM per layer for the whole stack, bit-identical
    /// to looping [`Self::forward_into`] — the batched kernels
    /// accumulate per element in exactly the per-item order, and every
    /// kernel path is bit-identical, so the batched `Auto` dispatcher
    /// (which weighs the *stacked* problem size) cannot perturb bits.
    pub fn forward_batched(&self, xs: &[&Tensor3]) -> Vec<Tensor3> {
        if xs.is_empty() {
            return Vec::new();
        }
        let mut a = BatchTensor3 {
            n: 0,
            c: 0,
            h: 0,
            w: 0,
            data: kernels::take_buf(0),
        };
        a.reset(xs.len(), xs[0].c, xs[0].h, xs[0].w);
        a.gather(xs);
        let mut b = BatchTensor3 {
            n: 0,
            c: 0,
            h: 0,
            w: 0,
            data: kernels::take_buf(0),
        };
        for l in &self.layers {
            l.infer_batched_path_into(&a, &mut b, KernelPath::Auto);
            std::mem::swap(&mut a, &mut b);
        }
        let mut outs = Vec::with_capacity(xs.len());
        for i in 0..a.n {
            let mut t = Tensor3::zeros(0, 0, 0);
            a.item_into(i, &mut t);
            outs.push(t);
        }
        kernels::put_buf(a.data);
        kernels::put_buf(b.data);
        outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_cv::DetectorArch;

    fn net() -> WindowNet {
        WindowNet::new(&DetectorConfig::new(DetectorArch::YoloV3, 0.5), 7)
    }

    #[test]
    fn input_dims_scale_and_clamp() {
        let n = net();
        assert_eq!(n.input_dims((64, 64)), (32, 32));
        assert_eq!(n.input_dims((8, 8)), (INPUT_MIN, INPUT_MIN));
        assert_eq!(n.input_dims((4000, 64)), (INPUT_MAX, 32));
    }

    #[test]
    fn construction_is_deterministic_and_seeded() {
        let cfg = DetectorConfig::new(DetectorArch::YoloV3, 0.5);
        let a = WindowNet::new(&cfg, 7);
        let b = WindowNet::new(&cfg, 7);
        let c = WindowNet::new(&cfg, 8);
        let m = WindowNet::new(&DetectorConfig::new(DetectorArch::MaskRcnn, 0.5), 7);
        assert_eq!(a.layers[0].weight.w, b.layers[0].weight.w);
        assert_ne!(a.layers[0].weight.w, c.layers[0].weight.w);
        assert_ne!(a.layers[0].weight.w, m.layers[0].weight.w);
    }

    #[test]
    fn batched_forward_bit_identical_to_looped() {
        let n = net();
        let mut xs = Vec::new();
        for i in 0..4u32 {
            let mut t = Tensor3::zeros(1, 24, 32);
            for (j, v) in t.data.iter_mut().enumerate() {
                *v = ((j as f32 * 0.11 + i as f32).cos() + 1.0) * 0.5;
            }
            xs.push(t);
        }
        let refs: Vec<&Tensor3> = xs.iter().collect();
        let batched = n.forward_batched(&refs);
        let mut want = Tensor3::zeros(0, 0, 0);
        for (i, x) in xs.iter().enumerate() {
            n.forward_into(x, &mut want);
            assert_eq!(batched[i].data, want.data, "window {i} diverges");
            assert_eq!(digest_tensor(&batched[i]), digest_tensor(&want));
        }
    }

    #[test]
    fn digest_distinguishes_bit_changes() {
        let a = Tensor3::from_vec(1, 1, 2, vec![1.0, 2.0]);
        let mut b = a.clone();
        assert_eq!(digest_tensor(&a), digest_tensor(&b));
        b.data[1] = f32::from_bits(b.data[1].to_bits() ^ 1);
        assert_ne!(digest_tensor(&a), digest_tensor(&b));
        // shape participates
        let c = Tensor3::from_vec(2, 1, 1, vec![1.0, 2.0]);
        assert_ne!(digest_tensor(&a), digest_tensor(&c));
    }
}
