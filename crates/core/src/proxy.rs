//! The segmentation proxy model (§3.3).
//!
//! A small segmentation CNN scores each 32×32 cell of the native frame
//! with the likelihood that it intersects an object detection. The model
//! runs at a reduced input resolution (one of [`PROXY_SCALES`], each a
//! separately trained model); its output grid is upsampled to the native
//! cell grid before thresholding and window grouping.
//!
//! Architecture follows the paper: a five-layer strided-convolution
//! encoder producing features at 1/32 of the input resolution, then a
//! two-layer 1×1 decoder emitting one logit per cell.
//!
//! Training labels come from detections computed by the best-accuracy
//! configuration θ_best over the training split: a cell's label is 1 iff
//! it intersects some θ_best detection.

use otif_cv::{Component, CostLedger, CostModel, Detection};
use otif_nn::kernels;
use otif_nn::{Activation, BatchTensor3, Conv2d, KernelPath, OptimKind, Tensor3, XavierInit};
use otif_sim::{Clip, GrayImage, Renderer};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Proxy input resolutions as fractions of the native resolution (5
/// trained models, as in the paper's implementation).
pub const PROXY_SCALES: [f32; 5] = [1.0, 0.75, 0.5, 0.375, 0.25];

/// A thresholded or raw score grid over the native 32×32 cell lattice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellGrid {
    /// Cells horizontally.
    pub cols: usize,
    /// Cells vertically.
    pub rows: usize,
    /// Row-major per-cell scores.
    pub scores: Vec<f32>,
}

impl CellGrid {
    /// All-zero grid.
    pub fn zeros(cols: usize, rows: usize) -> Self {
        CellGrid {
            cols,
            rows,
            scores: vec![0.0; cols * rows],
        }
    }

    #[inline]
    /// Score of cell (cx, cy).
    pub fn get(&self, cx: usize, cy: usize) -> f32 {
        self.scores[cy * self.cols + cx]
    }

    #[inline]
    /// Set the score of cell (cx, cy).
    pub fn set(&mut self, cx: usize, cy: usize, v: f32) {
        self.scores[cy * self.cols + cx] = v;
    }

    /// Indices of cells whose score exceeds `threshold`.
    pub fn positive_cells(&self, threshold: f32) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for cy in 0..self.rows {
            for cx in 0..self.cols {
                if self.get(cx, cy) > threshold {
                    out.push((cx, cy));
                }
            }
        }
        out
    }

    /// Ground-truth-style grid from a set of detections: 1 for every cell
    /// intersecting a detection rectangle (native coordinates).
    pub fn from_detections(cols: usize, rows: usize, dets: &[Detection]) -> CellGrid {
        let mut g = CellGrid::zeros(cols, rows);
        for d in dets {
            let cx0 = (d.rect.x / 32.0).floor().max(0.0) as usize;
            let cy0 = (d.rect.y / 32.0).floor().max(0.0) as usize;
            let cx1 = ((d.rect.x1() / 32.0).ceil() as usize).min(cols);
            let cy1 = ((d.rect.y1() / 32.0).ceil() as usize).min(rows);
            for cy in cy0..cy1 {
                for cx in cx0..cx1 {
                    g.set(cx, cy, 1.0);
                }
            }
        }
        g
    }
}

/// The trainable segmentation proxy network for one input resolution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegProxyModel {
    /// Input width/height in pixels (multiples of 32).
    pub in_w: usize,
    /// Input height in pixels (multiple of 32).
    pub in_h: usize,
    /// Native frame dimensions (for upsampling the output grid).
    pub native_w: usize,
    /// Native frame height (for upsampling the output grid).
    pub native_h: usize,
    encoder: Vec<Conv2d>,
    decoder: Vec<Conv2d>,
}

/// Round `native * scale` down to a multiple of 32 (min 32).
pub fn proxy_input_dims(native_w: usize, native_h: usize, scale: f32) -> (usize, usize) {
    let r = |v: usize| (((v as f32 * scale) as usize / 32).max(1)) * 32;
    (r(native_w), r(native_h))
}

impl SegProxyModel {
    /// Initialize an untrained proxy for `native x scale` input.
    pub fn new(native_w: usize, native_h: usize, scale: f32, seed: u64) -> Self {
        let (in_w, in_h) = proxy_input_dims(native_w, native_h, scale);
        let mut init = XavierInit::new(seed);
        let chans = [1usize, 3, 6, 6, 8, 8];
        let encoder = (0..5)
            .map(|i| {
                Conv2d::new(
                    chans[i],
                    chans[i + 1],
                    3,
                    2,
                    1,
                    Activation::LeakyRelu,
                    &mut init,
                )
            })
            .collect();
        let decoder = vec![
            Conv2d::new(8, 6, 1, 1, 0, Activation::LeakyRelu, &mut init),
            Conv2d::new(6, 1, 1, 1, 0, Activation::Linear, &mut init),
        ];
        SegProxyModel {
            in_w,
            in_h,
            native_w,
            native_h,
            encoder,
            decoder,
        }
    }

    /// Output grid dimensions (input / 32).
    pub fn out_dims(&self) -> (usize, usize) {
        (self.in_w / 32, self.in_h / 32)
    }

    /// Native cell-grid dimensions.
    pub fn native_cells(&self) -> (usize, usize) {
        (self.native_w / 32, self.native_h / 32)
    }

    fn to_tensor(&self, img: &GrayImage) -> Tensor3 {
        debug_assert_eq!((img.w, img.h), (self.in_w, self.in_h));
        Tensor3::from_vec(1, self.in_h, self.in_w, img.data.clone())
    }

    /// Forward pass to pre-sigmoid cell logits, written into a
    /// caller-owned tensor. Layer activations ping-pong between two
    /// scratch-pooled tensors, so the whole pass performs zero heap
    /// allocations after warm-up. `path` forces a convolution kernel
    /// path ([`KernelPath::Auto`] for production use; the kernels
    /// micro-bench forces `Naive`/`Gemm` to time them against each
    /// other).
    pub fn infer_logits_into(&self, img: &GrayImage, path: KernelPath, out: &mut Tensor3) {
        debug_assert_eq!((img.w, img.h), (self.in_w, self.in_h));
        let mut a = Tensor3 {
            c: 1,
            h: self.in_h,
            w: self.in_w,
            data: kernels::take_buf(0),
        };
        a.data.clear();
        a.data.extend_from_slice(&img.data);
        let mut b = Tensor3 {
            c: 0,
            h: 0,
            w: 0,
            data: kernels::take_buf(0),
        };
        for l in self.encoder.iter().chain(self.decoder.iter()) {
            l.infer_path_into(&a, &mut b, path);
            std::mem::swap(&mut a, &mut b);
        }
        out.reset(a.c, a.h, a.w);
        out.data.copy_from_slice(&a.data);
        kernels::put_buf(a.data);
        kernels::put_buf(b.data);
    }

    /// Batched forward to pre-sigmoid logits for several same-size input
    /// frames at once: each layer runs **one** batched convolution over
    /// the whole stack (one im2col, one cache-blocked GEMM with the
    /// batch folded into the column dimension — see
    /// [`otif_nn::kernels::conv2d_gemm_batched`]), so the weights stream
    /// through cache once per batch instead of once per frame.
    /// Bit-identical to looping [`Self::infer_logits_into`] over the
    /// frames; activations ping-pong between two scratch-pooled batch
    /// tensors, zero heap allocations after warm-up.
    pub fn infer_logits_batched_into(
        &self,
        imgs: &[&GrayImage],
        path: KernelPath,
        out: &mut BatchTensor3,
    ) {
        let n = imgs.len();
        if n == 0 {
            out.reset(0, 1, 0, 0);
            return;
        }
        let plane = self.in_h * self.in_w;
        let mut a = BatchTensor3 {
            n,
            c: 1,
            h: self.in_h,
            w: self.in_w,
            data: kernels::take_buf(0),
        };
        a.data.clear();
        for img in imgs {
            debug_assert_eq!((img.w, img.h), (self.in_w, self.in_h));
            debug_assert_eq!(img.data.len(), plane);
            a.data.extend_from_slice(&img.data);
        }
        let mut b = BatchTensor3 {
            n,
            c: 0,
            h: 0,
            w: 0,
            data: kernels::take_buf(0),
        };
        for l in self.encoder.iter().chain(self.decoder.iter()) {
            l.infer_batched_path_into(&a, &mut b, path);
            std::mem::swap(&mut a, &mut b);
        }
        out.reset(a.n, a.c, a.h, a.w);
        out.data.copy_from_slice(&a.data);
        kernels::put_buf(a.data);
        kernels::put_buf(b.data);
    }

    /// Simulated GPU cost of one inference.
    pub fn inference_cost(&self, model: &CostModel) -> f64 {
        model.proxy_per_call + (self.in_w * self.in_h) as f64 * model.proxy_per_px
    }

    /// Score the native cell grid from an input-resolution frame, charging
    /// the ledger. Scores are sigmoid probabilities; the coarse output
    /// grid is nearest-neighbour upsampled to the native cell lattice.
    pub fn score_cells(&self, img: &GrayImage, cost: &CostModel, ledger: &CostLedger) -> CellGrid {
        ledger.charge(Component::Proxy, self.inference_cost(cost));
        let mut logits = Tensor3 {
            c: 0,
            h: 0,
            w: 0,
            data: kernels::take_buf(0),
        };
        self.infer_logits_into(img, KernelPath::Auto, &mut logits);
        let (nc, nr) = self.native_cells();
        let mut grid = CellGrid::zeros(nc, nr);
        for cy in 0..nr {
            let sy = ((cy * logits.h) / nr).min(logits.h - 1);
            for cx in 0..nc {
                let sx = ((cx * logits.w) / nc).min(logits.w - 1);
                grid.set(cx, cy, otif_nn::sigmoid(logits.get(0, sy, sx)));
            }
        }
        kernels::put_buf(logits.data);
        grid
    }

    /// One training step on a single frame; returns the BCE loss.
    fn train_step(&mut self, img: &GrayImage, label: &CellGrid, lr: f32) -> f32 {
        let mut t = self.to_tensor(img);
        for l in &mut self.encoder {
            t = l.forward(&t);
        }
        for l in &mut self.decoder {
            t = l.forward(&t);
        }
        // Downsample the native-cell label grid to the model output grid
        // (max-pool: a coarse cell is positive if any covered native cell
        // is).
        let (ow, oh) = (t.w, t.h);
        let (nc, nr) = self.native_cells();
        let mut target = vec![0.0f32; ow * oh];
        for oy in 0..oh {
            for ox in 0..ow {
                let cx0 = ox * nc / ow;
                let cx1 = (((ox + 1) * nc).div_ceil(ow)).min(nc);
                let cy0 = oy * nr / oh;
                let cy1 = (((oy + 1) * nr).div_ceil(oh)).min(nr);
                let mut m = 0.0f32;
                for cy in cy0..cy1 {
                    for cx in cx0..cx1 {
                        m = m.max(label.get(cx, cy));
                    }
                }
                target[oy * ow + ox] = m;
            }
        }
        let loss = otif_nn::bce_with_logits(&t.data, &target);
        let grad = otif_nn::bce_with_logits_grad(&t.data, &target);
        let mut g = Tensor3::from_vec(1, oh, ow, grad);
        for l in self.decoder.iter_mut().rev() {
            g = l.backward(&g);
        }
        for l in self.encoder.iter_mut().rev() {
            g = l.backward(&g);
        }
        for l in self.encoder.iter_mut().chain(self.decoder.iter_mut()) {
            l.step(lr, OptimKind::Adam);
        }
        loss
    }

    /// Train against θ_best detections over training clips.
    ///
    /// `labels` pairs each training clip with the θ_best detections per
    /// frame. Per the paper, only frames with at least one detection are
    /// sampled. Returns the mean loss over the final quarter of steps.
    pub fn train(
        &mut self,
        clips: &[&Clip],
        labels: &[Vec<Vec<Detection>>],
        steps: usize,
        lr: f32,
        seed: u64,
    ) -> f32 {
        assert_eq!(clips.len(), labels.len());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // frames with at least one detection
        let pool: Vec<(usize, usize)> = labels
            .iter()
            .enumerate()
            .flat_map(|(ci, per_frame)| {
                per_frame
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| !d.is_empty())
                    .map(move |(f, _)| (ci, f))
            })
            .collect();
        if pool.is_empty() {
            return f32::NAN;
        }
        let (nc, nr) = self.native_cells();
        let mut tail = Vec::new();
        for step in 0..steps {
            let (ci, f) = pool[rng.gen_range(0..pool.len())];
            let img = Renderer::new(clips[ci]).render(f, self.in_w, self.in_h);
            let label = CellGrid::from_detections(nc, nr, &labels[ci][f]);
            let loss = self.train_step(&img, &label, lr);
            if step >= steps - steps / 4 {
                tail.push(loss);
            }
        }
        tail.iter().sum::<f32>() / tail.len().max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_geom::Rect;
    use otif_sim::{DatasetConfig, DatasetKind, ObjectClass};

    fn det(r: Rect) -> Detection {
        Detection {
            rect: r,
            class: ObjectClass::Car,
            confidence: 0.9,
            appearance: vec![],
            debug_gt: None,
        }
    }

    #[test]
    fn input_dims_are_multiples_of_32() {
        for s in PROXY_SCALES {
            let (w, h) = proxy_input_dims(384, 224, s);
            assert_eq!(w % 32, 0);
            assert_eq!(h % 32, 0);
            assert!(w >= 32 && h >= 32);
        }
        assert_eq!(proxy_input_dims(384, 224, 1.0), (384, 224));
        assert_eq!(proxy_input_dims(384, 224, 0.5), (192, 96));
    }

    #[test]
    fn cell_grid_from_detections_marks_intersections() {
        // one detection spanning cells (1,0)-(2,0)
        let g = CellGrid::from_detections(4, 3, &[det(Rect::new(40.0, 5.0, 50.0, 20.0))]);
        assert_eq!(g.get(1, 0), 1.0);
        assert_eq!(g.get(2, 0), 1.0);
        assert_eq!(g.get(0, 0), 0.0);
        assert_eq!(g.get(3, 0), 0.0);
        assert_eq!(g.get(1, 1), 0.0);
        assert_eq!(g.positive_cells(0.5).len(), 2);
    }

    #[test]
    fn output_grid_matches_input_over_32() {
        let m = SegProxyModel::new(384, 224, 0.5, 1);
        assert_eq!((m.in_w, m.in_h), (192, 96));
        assert_eq!(m.out_dims(), (6, 3));
        assert_eq!(m.native_cells(), (12, 7));
    }

    #[test]
    fn score_cells_upsamples_and_charges() {
        let m = SegProxyModel::new(384, 224, 0.5, 1);
        let img = GrayImage::new(192, 96);
        let ledger = CostLedger::new();
        let cm = CostModel::default();
        let grid = m.score_cells(&img, &cm, &ledger);
        assert_eq!((grid.cols, grid.rows), (12, 7));
        assert!(grid.scores.iter().all(|s| (0.0..=1.0).contains(s)));
        assert!(ledger.get(Component::Proxy) > 0.0);
    }

    #[test]
    fn lower_resolution_costs_less() {
        let cm = CostModel::default();
        let hi = SegProxyModel::new(384, 224, 1.0, 1).inference_cost(&cm);
        let lo = SegProxyModel::new(384, 224, 0.25, 1).inference_cost(&cm);
        assert!(lo < hi * 0.3);
    }

    #[test]
    fn batched_logits_bit_identical_to_looped() {
        let m = SegProxyModel::new(128, 96, 0.5, 5);
        let mut imgs = Vec::new();
        for i in 0..5u32 {
            let mut img = GrayImage::new(m.in_w, m.in_h);
            for (j, v) in img.data.iter_mut().enumerate() {
                *v = ((j as f32 * 0.013 + i as f32).sin() + 1.0) * 0.5;
            }
            imgs.push(img);
        }
        for path in [KernelPath::Auto, KernelPath::Gemm, KernelPath::Naive] {
            let refs: Vec<&GrayImage> = imgs.iter().collect();
            let mut batched = BatchTensor3::zeros(0, 0, 0, 0);
            m.infer_logits_batched_into(&refs, path, &mut batched);
            let mut want = Tensor3::zeros(0, 0, 0);
            let mut got = Tensor3::zeros(0, 0, 0);
            for (i, img) in imgs.iter().enumerate() {
                m.infer_logits_into(img, path, &mut want);
                batched.item_into(i, &mut got);
                assert_eq!(
                    got.data, want.data,
                    "batched proxy logits diverge at item {i} ({path:?})"
                );
            }
        }
    }

    #[test]
    fn training_learns_object_cells() {
        // Train a low-res proxy on a tiny caldot dataset against ground
        // truth boxes, then check it separates object cells from empty
        // cells on a held-out clip.
        let d = DatasetConfig::small(DatasetKind::Caldot1, 31).generate();
        let clips: Vec<&Clip> = d.train.iter().collect();
        let labels: Vec<Vec<Vec<Detection>>> = d
            .train
            .iter()
            .map(|c| {
                (0..c.num_frames())
                    .map(|f| c.gt_boxes(f).into_iter().map(|(_, _, r)| det(r)).collect())
                    .collect()
            })
            .collect();
        // Averaged over three fixed inits instead of one hand-picked
        // lucky seed: individual inits on this tiny low-res training
        // set range from loss ~0.12 / separation ~0.37 (seeds 1, 3) to
        // a mediocre ~0.21 / ~0.32 (seed 2), and a rare plateau basin
        // sits near loss 0.65 / separation ~0. The averaged bounds —
        // mean loss < 0.35 (measured ~0.155) and mean separation
        // > 0.18 (measured ~0.36) — hold even if one of the three
        // seeds degenerates all the way to the plateau.
        let mut losses = Vec::new();
        let mut separations = Vec::new();
        for model_seed in [1u64, 2, 3] {
            let mut m = SegProxyModel::new(384, 224, 0.375, model_seed);
            losses.push(m.train(&clips, &labels, 800, 0.01, 9));

            // Evaluate separation on a validation clip.
            let clip = &d.val[0];
            let cm = CostModel::default();
            let ledger = CostLedger::new();
            let mut pos_scores = Vec::new();
            let mut neg_scores = Vec::new();
            for f in (0..clip.num_frames()).step_by(7) {
                let img = Renderer::new(clip).render(f, m.in_w, m.in_h);
                let grid = m.score_cells(&img, &cm, &ledger);
                let gt = CellGrid::from_detections(
                    grid.cols,
                    grid.rows,
                    &clip
                        .gt_boxes(f)
                        .into_iter()
                        .map(|(_, _, r)| det(r))
                        .collect::<Vec<_>>(),
                );
                for cy in 0..grid.rows {
                    for cx in 0..grid.cols {
                        if gt.get(cx, cy) > 0.5 {
                            pos_scores.push(grid.get(cx, cy));
                        } else {
                            neg_scores.push(grid.get(cx, cy));
                        }
                    }
                }
            }
            let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
            separations.push(mean(&pos_scores) - mean(&neg_scores));
        }
        let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        let (loss, sep) = (avg(&losses), avg(&separations));
        assert!(loss < 0.35, "mean training loss {loss} ({losses:?})");
        assert!(
            sep > 0.18,
            "mean object/empty cell separation {sep} ({separations:?})"
        );
    }
}
