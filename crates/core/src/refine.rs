//! Cluster-based track refinement (§3.4, "Refinement").
//!
//! Tracks extracted at low sampling rates start and end offset from the
//! object's true entry/exit, which breaks spatial predicates on track
//! endpoints (e.g. turning-movement counts). Instead of decoding extra
//! frames (Miris), OTIF estimates the true start/end from *similar tracks*
//! seen in the training set:
//!
//! 1. training tracks are resampled to `N = 20` points and clustered with
//!    DBSCAN under the average-corresponding-point distance;
//! 2. cluster centers (pointwise mean paths) are indexed spatially by
//!    their endpoints;
//! 3. at execution time, the `k = 10` nearest clusters to a track are
//!    found via the index, and the track is extended with the
//!    cluster-size-weighted median of their start and end points.
//!
//! Refinement applies to fixed cameras only.

use otif_cv::Detection;
use otif_geom::{dbscan, DbscanParams, GridIndex, Point, Polyline};
use otif_track::Track;

/// Number of resample points per track path (the paper's N).
pub const RESAMPLE_N: usize = 20;

/// Number of nearest clusters consulted per refinement (the paper's k).
pub const KNN_K: usize = 10;

/// A cluster of similar training-set track paths.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PathCluster {
    /// Pointwise-mean path of the member tracks (N points).
    pub center: Polyline,
    /// Number of member tracks (the weight used in the median).
    pub size: usize,
}

/// The prebuilt refinement index.
pub struct RefineIndex {
    /// All path clusters (DBSCAN groups plus noise singletons).
    pub clusters: Vec<PathCluster>,
    /// Spatial index over cluster-center endpoints → cluster id.
    endpoint_index: GridIndex<usize>,
}

impl RefineIndex {
    /// Build the index from θ_best training-set tracks.
    ///
    /// `eps` defaults to 3.5 % of the frame diagonal when `None` — tight
    /// enough that the distinct turning movements of a compact junction
    /// stay in separate clusters (merging them blends unrelated paths and
    /// refinement then actively misleads path classification).
    pub fn build(tracks: &[Track], frame_w: f32, frame_h: f32, eps: Option<f32>) -> RefineIndex {
        let eps = eps.unwrap_or_else(|| (frame_w * frame_w + frame_h * frame_h).sqrt() * 0.035);
        let paths: Vec<Polyline> = tracks
            .iter()
            .filter(|t| t.len() >= 2)
            .map(|t| t.center_polyline().resample(RESAMPLE_N))
            .collect();

        let result = dbscan(paths.len(), DbscanParams { eps, min_pts: 2 }, |i, j| {
            paths[i].avg_point_distance(&paths[j])
        });

        let mut clusters = Vec::new();
        for member_ids in result.clusters() {
            let members: Vec<&Polyline> = member_ids.iter().map(|&i| &paths[i]).collect();
            clusters.push(PathCluster {
                center: Polyline::mean(&members),
                size: members.len(),
            });
        }
        // noise tracks become singleton clusters so rare paths still
        // contribute candidates
        for i in result.noise() {
            clusters.push(PathCluster {
                center: paths[i].clone(),
                size: 1,
            });
        }

        Self::from_clusters(clusters, frame_w, frame_h)
    }

    /// Rebuild the spatial index from (possibly deserialized) clusters.
    pub fn from_clusters(clusters: Vec<PathCluster>, frame_w: f32, frame_h: f32) -> RefineIndex {
        let mut endpoint_index = GridIndex::new(frame_w.max(1.0), frame_h.max(1.0), 48.0);
        for (ci, c) in clusters.iter().enumerate() {
            endpoint_index.insert(c.center.first(), ci);
            endpoint_index.insert(c.center.last(), ci);
        }
        RefineIndex {
            clusters,
            endpoint_index,
        }
    }

    /// Directed chamfer distance from the (partial) track path to a
    /// cluster center: mean over track points of the distance to the
    /// nearest center point. A low-rate track covers a sub-segment of the
    /// full path, so the symmetric §3.4 metric would over-penalize.
    fn track_to_center_dist(track_path: &Polyline, center: &Polyline) -> f32 {
        let sum: f32 = track_path
            .points
            .iter()
            .map(|p| {
                center
                    .points
                    .iter()
                    .map(|q| p.dist(q))
                    .fold(f32::INFINITY, f32::min)
            })
            .sum();
        sum / track_path.points.len() as f32
    }

    /// The k nearest clusters to a track (by directed chamfer distance),
    /// pre-filtered through the endpoint index.
    pub fn nearest_clusters(&self, track: &Track, k: usize) -> Vec<(usize, f32)> {
        if self.clusters.is_empty() || track.is_empty() {
            return Vec::new();
        }
        let path = track.center_polyline().resample(RESAMPLE_N);
        // candidate clusters near either endpoint of the track
        let mut cand: Vec<usize> = Vec::new();
        for p in [path.first(), path.last()] {
            for (_, ci) in self.endpoint_index.knn(&p, k * 3) {
                cand.push(ci);
            }
        }
        cand.sort_unstable();
        cand.dedup();
        let mut scored: Vec<(usize, f32)> = cand
            .into_iter()
            .map(|ci| {
                (
                    ci,
                    Self::track_to_center_dist(&path, &self.clusters[ci].center),
                )
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        // Drop clusters far worse than the best match: with few clusters,
        // a fixed k would otherwise pull unrelated paths into the median.
        if let Some(&(_, best)) = scored.first() {
            let cutoff = (best * 2.5).max(16.0);
            scored.retain(|&(_, d)| d <= cutoff);
        }
        scored
    }

    /// Estimated true (start, end) for a track: weighted medians over the
    /// nearest clusters' endpoints, with cluster sizes as weights. Each
    /// cluster center is oriented to match the track's direction first.
    pub fn estimate_endpoints(&self, track: &Track) -> Option<(Point, Point)> {
        let near = self.nearest_clusters(track, KNN_K);
        if near.is_empty() {
            return None;
        }
        let tp = track.center_polyline();
        let (tstart, tend) = (tp.first(), tp.last());
        let mut starts: Vec<(Point, f32)> = Vec::new();
        let mut ends: Vec<(Point, f32)> = Vec::new();
        for (ci, _) in &near {
            let c = &self.clusters[*ci];
            let (mut s, mut e) = (c.center.first(), c.center.last());
            // orient the cluster to the track's travel direction
            if s.dist(&tstart) + e.dist(&tend) > s.dist(&tend) + e.dist(&tstart) {
                std::mem::swap(&mut s, &mut e);
            }
            starts.push((s, c.size as f32));
            ends.push((e, c.size as f32));
        }
        Some((weighted_median(&starts), weighted_median(&ends)))
    }

    /// Extend a track's first/last detections toward the estimated true
    /// endpoints (§3.4, Figure 4): synthetic detections are prepended/
    /// appended at the estimated entry and exit positions.
    ///
    /// Refinement is skipped when no cluster matches the track closely —
    /// extending toward an unrelated path's endpoints is worse than
    /// leaving the track alone.
    pub fn refine(&self, track: &mut Track) {
        if track.len() < 2 {
            return;
        }
        // confidence gate: the nearest cluster must actually resemble
        // this track
        match self.nearest_clusters(track, 1).first() {
            Some(&(_, d)) if d <= 40.0 => {}
            _ => return,
        }
        let Some((start, end)) = self.estimate_endpoints(track) else {
            return;
        };
        let first = track.dets.first().unwrap().clone();
        let last = track.dets.last().unwrap().clone();

        let mk = |template: &Detection, at: Point| -> Detection {
            let mut d = template.clone();
            d.rect = otif_geom::Rect::new(
                at.x - template.rect.w / 2.0,
                at.y - template.rect.h / 2.0,
                template.rect.w,
                template.rect.h,
            );
            d.confidence *= 0.5; // synthetic extension, lower confidence
            d
        };

        // Travel direction at the track's ends (for direction checks:
        // the estimated start must lie behind the first detection and
        // the estimated end ahead of the last one).
        let fc = first.1.rect.center();
        let lc = last.1.rect.center();
        let dir_in = track.dets.get(1).map(|(_, d)| d.rect.center() - fc);
        let dir_out = track
            .dets
            .get(track.len().wrapping_sub(2))
            .map(|(_, d)| lc - d.rect.center());

        // Only extend when the estimate is meaningfully beyond the track.
        let speed = track.mean_speed().max(1.0);
        let behind = dir_in
            .map(|d| (start - fc).dot(&d) <= 0.0 || d.norm() < 1e-3)
            .unwrap_or(true);
        if behind && start.dist(&fc) > speed {
            let gap_frames = (start.dist(&fc) / speed).ceil() as usize;
            let new_frame = first.0.saturating_sub(gap_frames.max(1));
            if new_frame < first.0 {
                track.dets.insert(0, (new_frame, mk(&first.1, start)));
            }
        }
        let ahead = dir_out
            .map(|d| (end - lc).dot(&d) >= 0.0 || d.norm() < 1e-3)
            .unwrap_or(true);
        if ahead && end.dist(&lc) > speed {
            let gap_frames = (end.dist(&lc) / speed).ceil() as usize;
            track
                .dets
                .push((last.0 + gap_frames.max(1), mk(&last.1, end)));
        }
    }
}

/// Per-dimension weighted median of points.
fn weighted_median(pts: &[(Point, f32)]) -> Point {
    let med = |vals: &mut Vec<(f32, f32)>| -> f32 {
        vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let total: f32 = vals.iter().map(|(_, w)| w).sum();
        let mut acc = 0.0;
        for (v, w) in vals.iter() {
            acc += w;
            if acc >= total / 2.0 {
                return *v;
            }
        }
        vals.last().map(|(v, _)| *v).unwrap_or(0.0)
    };
    let mut xs: Vec<(f32, f32)> = pts.iter().map(|(p, w)| (p.x, *w)).collect();
    let mut ys: Vec<(f32, f32)> = pts.iter().map(|(p, w)| (p.y, *w)).collect();
    Point::new(med(&mut xs), med(&mut ys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_geom::Rect;
    use otif_sim::ObjectClass;

    fn det(x: f32, y: f32) -> Detection {
        Detection {
            rect: Rect::new(x - 10.0, y - 6.0, 20.0, 12.0),
            class: ObjectClass::Car,
            confidence: 0.9,
            appearance: vec![],
            debug_gt: None,
        }
    }

    /// Training tracks: `n` near-identical paths from (0,100) to (383,100)
    /// and `n` from (190,0) to (190,223).
    fn training_tracks(n: usize) -> Vec<Track> {
        let mut out = Vec::new();
        let mut id = 0;
        for i in 0..n {
            let y = 100.0 + i as f32 * 2.0;
            let mut t = Track::new(id, ObjectClass::Car);
            id += 1;
            for f in 0..20usize {
                t.push(f, det(f as f32 * 20.0, y));
            }
            out.push(t);
            let x = 190.0 + i as f32 * 2.0;
            let mut t = Track::new(id, ObjectClass::Car);
            id += 1;
            for f in 0..20usize {
                t.push(f, det(x, f as f32 * 11.0));
            }
            out.push(t);
        }
        out
    }

    #[test]
    fn build_clusters_similar_paths() {
        let idx = RefineIndex::build(&training_tracks(5), 384.0, 224.0, None);
        // two dominant clusters (horizontal + vertical paths)
        let big = idx.clusters.iter().filter(|c| c.size >= 4).count();
        assert_eq!(
            big,
            2,
            "clusters: {:?}",
            idx.clusters.iter().map(|c| c.size).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nearest_cluster_matches_track_shape() {
        let idx = RefineIndex::build(&training_tracks(5), 384.0, 224.0, None);
        // a partial horizontal track in the middle of the frame
        let mut t = Track::new(99, ObjectClass::Car);
        for f in 0..5usize {
            t.push(f * 4, det(120.0 + f as f32 * 40.0, 102.0));
        }
        let near = idx.nearest_clusters(&t, 1);
        assert_eq!(near.len(), 1);
        let c = &idx.clusters[near[0].0];
        // center should be roughly horizontal at y≈104
        assert!((c.center.first().y - c.center.last().y).abs() < 20.0);
    }

    #[test]
    fn refine_extends_partial_track_to_path_endpoints() {
        let idx = RefineIndex::build(&training_tracks(5), 384.0, 224.0, None);
        // partial track covering only the middle third of the horizontal
        // path (as a gap-sampled track would)
        let mut t = Track::new(99, ObjectClass::Car);
        for f in 0..5usize {
            t.push(10 + f * 4, det(120.0 + f as f32 * 30.0, 102.0));
        }
        let before_start = t.dets.first().unwrap().1.rect.center().x;
        let before_end = t.dets.last().unwrap().1.rect.center().x;
        idx.refine(&mut t);
        let after_start = t.dets.first().unwrap().1.rect.center().x;
        let after_end = t.dets.last().unwrap().1.rect.center().x;
        assert!(
            after_start < before_start - 50.0,
            "start {before_start} -> {after_start}"
        );
        assert!(
            after_end > before_end + 50.0,
            "end {before_end} -> {after_end}"
        );
        // frames remain strictly increasing
        assert!(t.dets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn refine_leaves_full_track_mostly_alone() {
        let idx = RefineIndex::build(&training_tracks(5), 384.0, 224.0, None);
        // a track already spanning the full horizontal path
        let mut t = Track::new(99, ObjectClass::Car);
        for f in 0..20usize {
            t.push(f, det(f as f32 * 20.0, 102.0));
        }
        let len_before = t.len();
        let start_before = t.dets.first().unwrap().1.rect.center();
        idx.refine(&mut t);
        let start_after = t.dets.first().unwrap().1.rect.center();
        assert!(
            start_after.dist(&start_before) < 30.0,
            "full track start moved {} px",
            start_after.dist(&start_before)
        );
        assert!(t.len() <= len_before + 2);
    }

    #[test]
    fn empty_index_is_a_noop() {
        let idx = RefineIndex::build(&[], 384.0, 224.0, None);
        let mut t = Track::new(0, ObjectClass::Car);
        t.push(0, det(10.0, 10.0));
        t.push(4, det(50.0, 10.0));
        let before = t.clone().dets;
        idx.refine(&mut t);
        assert_eq!(t.dets.len(), before.len());
    }

    #[test]
    fn weighted_median_respects_weights() {
        let pts = vec![
            (Point::new(0.0, 0.0), 1.0),
            (Point::new(10.0, 10.0), 10.0),
            (Point::new(20.0, 20.0), 1.0),
        ];
        let m = weighted_median(&pts);
        assert_eq!(m, Point::new(10.0, 10.0));
    }

    #[test]
    fn reversed_direction_cluster_is_oriented() {
        // training tracks run left→right; query track runs right→left
        let idx = RefineIndex::build(&training_tracks(5), 384.0, 224.0, None);
        let mut t = Track::new(99, ObjectClass::Car);
        for f in 0..5usize {
            t.push(f * 4, det(260.0 - f as f32 * 30.0, 102.0));
        }
        let (start, end) = idx.estimate_endpoints(&t).unwrap();
        // estimated start should be on the right, end on the left
        assert!(start.x > end.x, "start {start:?} end {end:?}");
    }
}
