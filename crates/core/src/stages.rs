//! Per-frame pipeline stages, factored out of [`crate::Pipeline`] so
//! the streaming engine (`otif-engine`) can run the same computation
//! spread across threads — decode accounting, window selection,
//! detection and tracking — with results identical to the sequential
//! executor.
//!
//! Each function is pure with respect to ordering: given the same
//! `(config, context, clip, frame)` it charges the same simulated
//! seconds and produces the same outputs regardless of which thread
//! calls it, which is what makes the engine's per-stream determinism
//! guarantee (engine output ≡ sequential `Pipeline` output) possible.

use crate::config::{OtifConfig, TrackerKind};
use crate::pipeline::{decode_cost, ExecutionContext};
use otif_cv::{Component, CostLedger, Detection};
use otif_geom::Rect;
use otif_sim::{Clip, Renderer};
use otif_track::{RecurrentTracker, SortTracker, Track};

/// The tracker variant selected by a configuration — SORT or the
/// trained recurrent tracker — behind one `step`/`finish` interface.
pub enum FrameTracker {
    /// IoU/Kalman SORT tracker (no trained model).
    Sort(SortTracker),
    /// GRU-based recurrent tracker (requires `ctx.tracker_model`).
    Recurrent(Box<RecurrentTracker>),
}

impl FrameTracker {
    /// Instantiate the tracker `config` asks for.
    ///
    /// # Panics
    /// If `config.tracker` is `Recurrent` and the context has no
    /// trained tracker model.
    pub fn new(config: &OtifConfig, ctx: &ExecutionContext) -> Self {
        match config.tracker {
            TrackerKind::Sort => FrameTracker::Sort(SortTracker::default()),
            TrackerKind::Recurrent => {
                let model = ctx
                    .tracker_model
                    .expect("recurrent tracker requires a trained model")
                    .clone();
                FrameTracker::Recurrent(Box::new(RecurrentTracker::new(model)))
            }
        }
    }

    /// Feed one frame's detections.
    pub fn step(&mut self, frame: usize, dets: Vec<Detection>) {
        match self {
            FrameTracker::Sort(t) => t.step(frame, dets),
            FrameTracker::Recurrent(t) => t.step(frame, dets),
        }
    }

    /// Terminate all live tracks and return them.
    pub fn finish(self) -> Vec<Track> {
        match self {
            FrameTracker::Sort(t) => t.finish(),
            FrameTracker::Recurrent(t) => t.finish(),
        }
    }
}

/// Charge the simulated decode cost of one sampled frame.
pub fn charge_decode(
    config: &OtifConfig,
    ctx: &ExecutionContext,
    native_px: f64,
    ledger: &CostLedger,
) {
    ledger.charge(
        Component::Decode,
        decode_cost(&ctx.cost, native_px, config.detector.scale, config.gap),
    );
}

/// Select the detector windows for one frame: run the segmentation
/// proxy and group its positive cells when a proxy is configured
/// (charging proxy cost), else the full frame.
///
/// # Panics
/// If `config.proxy` is set but the context lacks trained proxies or
/// the window set.
pub fn select_windows(
    config: &OtifConfig,
    ctx: &ExecutionContext,
    renderer: &Renderer,
    frame_rect: Rect,
    frame: usize,
    ledger: &CostLedger,
) -> Vec<Rect> {
    match (&config.proxy, ctx.proxies, ctx.window_set) {
        (Some(p), Some(proxies), Some(ws)) => {
            let proxy = &proxies[p.resolution_idx];
            let img = renderer.render(frame, proxy.in_w, proxy.in_h);
            let grid = proxy.score_cells(&img, &ctx.cost, ledger);
            crate::grouping::group_cells(&grid.positive_cells(p.threshold), ws)
        }
        (Some(_), _, _) => {
            panic!("config has a proxy but context lacks proxies/window set")
        }
        (None, _, _) => vec![frame_rect],
    }
}

/// Charge the tracker's per-frame matching cost for `n_dets`
/// detections.
pub fn charge_tracker_step(ctx: &ExecutionContext, n_dets: usize, ledger: &CostLedger) {
    ledger.charge(
        Component::Tracker,
        ctx.cost.tracker_per_frame + n_dets as f64 * ctx.cost.tracker_per_det,
    );
}

/// Post-tracking finalization shared by the sequential pipeline and
/// the engine: stitch fragments (window scaled by the sampling gap),
/// charge the stitch pass, and refine endpoints when configured.
pub fn finalize_tracks(
    config: &OtifConfig,
    ctx: &ExecutionContext,
    clip: &Clip,
    mut tracks: Vec<Track>,
    ledger: &CostLedger,
) -> Vec<Track> {
    // Stitch fragments split by occlusion/miss streaks. The stitch
    // window is in *frames*, so scale it with the sampling gap.
    let stitch_cfg = otif_track::StitchConfig {
        max_frame_gap: 14 * config.gap.max(1),
        per_frame_dist_diag: 0.35 / config.gap.max(1) as f32,
        frame: Some(clip.scene.frame_rect()),
        ..otif_track::StitchConfig::default()
    };
    tracks = otif_track::stitch_tracks(tracks, stitch_cfg);
    ledger.charge(
        Component::Tracker,
        tracks.len() as f64 * ctx.cost.tracker_per_det,
    );
    if config.refine {
        if let Some(idx) = ctx.refine_index {
            for t in tracks.iter_mut() {
                idx.refine(t);
            }
            ledger.charge(
                Component::Refinement,
                tracks.len() as f64 * ctx.cost.refine_per_track,
            );
        }
    }
    tracks
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_cv::{CostModel, DetectorArch, DetectorConfig};
    use otif_sim::{DatasetConfig, DatasetKind};

    fn config() -> OtifConfig {
        OtifConfig {
            detector: DetectorConfig::new(DetectorArch::YoloV3, 1.0),
            proxy: None,
            gap: 2,
            tracker: TrackerKind::Sort,
            refine: false,
        }
    }

    #[test]
    fn select_windows_without_proxy_is_full_frame() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 9).generate();
        let clip = &d.test[0];
        let ctx = ExecutionContext::bare(CostModel::default(), 1);
        let renderer = Renderer::new(clip);
        let ledger = CostLedger::new();
        let ws = select_windows(
            &config(),
            &ctx,
            &renderer,
            clip.scene.frame_rect(),
            0,
            &ledger,
        );
        assert_eq!(ws, vec![clip.scene.frame_rect()]);
        // full-frame path must not charge proxy time
        assert_eq!(ledger.get(Component::Proxy), 0.0);
    }

    #[test]
    fn stage_charges_match_direct_formulas() {
        let ctx = ExecutionContext::bare(CostModel::default(), 1);
        let cfg = config();
        let ledger = CostLedger::new();
        charge_decode(&cfg, &ctx, 100_000.0, &ledger);
        assert!(
            (ledger.get(Component::Decode)
                - decode_cost(&ctx.cost, 100_000.0, cfg.detector.scale, cfg.gap))
            .abs()
                < 1e-15
        );
        charge_tracker_step(&ctx, 5, &ledger);
        assert!(
            (ledger.get(Component::Tracker)
                - (ctx.cost.tracker_per_frame + 5.0 * ctx.cost.tracker_per_det))
                .abs()
                < 1e-15
        );
    }

    #[test]
    #[should_panic(expected = "requires a trained model")]
    fn recurrent_tracker_needs_model() {
        let ctx = ExecutionContext::bare(CostModel::default(), 1);
        let mut cfg = config();
        cfg.tracker = TrackerKind::Recurrent;
        let _ = FrameTracker::new(&cfg, &ctx);
    }
}
