//! `otif-cli` — a small command-line front end for the OTIF workflow.
//!
//! ```text
//! otif-cli generate --dataset warsaw --clips 4 --seconds 10 --seed 7
//! otif-cli prepare  --dataset warsaw --clips 4 --seconds 10 --seed 7 --out model.json
//! otif-cli curve    --model model.json
//! otif-cli execute  --model model.json --dataset warsaw --clips 4 --seconds 10 \
//!                   --seed 7 --pick 0.05 --out tracks.json
//! otif-cli query    --tracks tracks.json --dataset warsaw --clips 4 --seconds 10 \
//!                   --seed 7 --query breakdown|count|braking|volume
//! ```
//!
//! Datasets are synthetic and regenerated deterministically from
//! `(dataset, clips, seconds, seed)`, so artifacts stay small: the model
//! file carries only trained weights, window sizes, the refinement
//! clusters and the tuned curve.

use otif::core::workflow::OtifArtifacts;
use otif::core::{Otif, OtifOptions};
use otif::engine::{
    run_manifest, DetectorExec, Engine, EngineOptions, FaultPlan, RealRunIo, RunJournal, RunSession,
};
use otif::geom::{Point, Polygon};
use otif::query::{AggregateQuery, FrameLimitQuery, FrameQueryKind, TrackQuery};
use otif::serve::{
    fsck, mixed_workload, run_workload_traced, Answer, CacheMode, ClipInfo, OverloadPolicy,
    QueryServer, ServeOptions, ServeQuery, TrackStore,
};
use otif::sim::{Dataset, DatasetConfig, DatasetKind, DatasetScale};
use otif::track::Track;
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const DATASET_FLAGS: [&str; 4] = ["dataset", "clips", "seconds", "seed"];

/// Parse `--key value` pairs, rejecting anything else: positional
/// arguments, flags outside `allowed`, and flags with a missing value
/// (trailing, or directly followed by another flag) are all hard errors
/// naming the offending argument. Flags listed in `switches` are
/// boolean and take no value.
fn parse_flags(
    args: &[String],
    allowed: &[&str],
    switches: &[&str],
) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            return Err(format!(
                "unexpected positional argument {:?} (flags are --key value pairs)",
                args[i]
            ));
        };
        if !allowed.contains(&key) {
            return Err(format!(
                "unknown flag --{key}; expected one of {}",
                allowed
                    .iter()
                    .map(|a| format!("--{a}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        if switches.contains(&key) {
            out.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return Err(format!("flag --{key} is missing a value"));
        };
        if value.starts_with("--") {
            return Err(format!(
                "flag --{key} is missing a value (found {value:?} instead)"
            ));
        }
        out.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(out)
}

fn dataset_kind(name: &str) -> Result<DatasetKind, String> {
    DatasetKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| {
            format!(
                "unknown dataset {name:?}; expected one of {}",
                DatasetKind::ALL
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
}

fn dataset_from_flags(flags: &HashMap<String, String>) -> Result<Dataset, String> {
    let kind = dataset_kind(
        flags
            .get("dataset")
            .map(String::as_str)
            .unwrap_or("caldot1"),
    )?;
    let clips: usize = flags
        .get("clips")
        .map(|s| s.parse().map_err(|e| format!("bad --clips: {e}")))
        .transpose()?
        .unwrap_or(3);
    let seconds: f32 = flags
        .get("seconds")
        .map(|s| s.parse().map_err(|e| format!("bad --seconds: {e}")))
        .transpose()?
        .unwrap_or(8.0);
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(7);
    Ok(DatasetConfig::new(
        kind,
        DatasetScale {
            clips_per_split: clips,
            clip_seconds: seconds,
        },
        seed,
    )
    .generate())
}

fn track_query(dataset: &Dataset) -> TrackQuery {
    match dataset.kind {
        DatasetKind::Amsterdam | DatasetKind::Jackson => TrackQuery::Count,
        _ => TrackQuery::path_breakdown(&dataset.scene),
    }
}

fn cmd_generate(flags: HashMap<String, String>) -> Result<(), String> {
    let dataset = dataset_from_flags(&flags)?;
    println!("dataset: {}", dataset.kind.name());
    println!(
        "scene: {}x{} @ {} fps, {} paths, camera {}",
        dataset.scene.width,
        dataset.scene.height,
        dataset.scene.fps,
        dataset.scene.paths.len(),
        if dataset.kind.fixed_camera() {
            "fixed"
        } else {
            "moving"
        }
    );
    for (name, split) in [
        ("train", &dataset.train),
        ("val", &dataset.val),
        ("test", &dataset.test),
    ] {
        let frames: usize = split.iter().map(|c| c.num_frames()).sum();
        let tracks: usize = split.iter().map(|c| c.gt_tracks.len()).sum();
        println!(
            "{name}: {} clips, {frames} frames, {tracks} ground-truth tracks",
            split.len()
        );
    }
    Ok(())
}

fn cmd_prepare(flags: HashMap<String, String>) -> Result<(), String> {
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "otif-model.json".to_string());
    let dataset = dataset_from_flags(&flags)?;
    let query = track_query(&dataset);
    let val = dataset.val.clone();
    let metric = move |tracks: &[Vec<Track>]| query.accuracy(tracks, &val);
    eprintln!(
        "preparing OTIF on {} (this trains models)...",
        dataset.kind.name()
    );
    let otif = Otif::prepare(&dataset, &metric, OtifOptions::fast_test());
    let artifacts = otif.to_artifacts();
    let json = serde_json::to_string(&artifacts).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    println!("curve ({} points):", otif.curve.len());
    for p in &otif.curve {
        println!(
            "  {:>9.3} s/val-split  acc {:>5.1}%  {}",
            p.val_seconds,
            p.accuracy * 100.0,
            p.config.describe()
        );
    }
    Ok(())
}

fn load_model(flags: &HashMap<String, String>) -> Result<Otif, String> {
    let path = flags
        .get("model")
        .cloned()
        .unwrap_or_else(|| "otif-model.json".to_string());
    let json = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let artifacts: OtifArtifacts = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    Ok(Otif::from_artifacts(artifacts, OtifOptions::fast_test()))
}

fn cmd_curve(flags: HashMap<String, String>) -> Result<(), String> {
    let otif = load_model(&flags)?;
    println!("theta_best: {}", otif.theta_best.describe());
    for (i, p) in otif.curve.iter().enumerate() {
        println!(
            "[{i}] {:>9.3} s/val-split  acc {:>5.1}%  {}",
            p.val_seconds,
            p.accuracy * 100.0,
            p.config.describe()
        );
    }
    Ok(())
}

fn cmd_execute(flags: HashMap<String, String>) -> Result<(), String> {
    let otif = load_model(&flags)?;
    let dataset = dataset_from_flags(&flags)?;
    let pick: f32 = flags
        .get("pick")
        .map(|s| s.parse().map_err(|e| format!("bad --pick: {e}")))
        .transpose()?
        .unwrap_or(0.05);
    let streams: usize = flags
        .get("streams")
        .map(|s| s.parse().map_err(|e| format!("bad --streams: {e}")))
        .transpose()?
        .unwrap_or(1);
    let prefetch: Option<usize> = flags
        .get("prefetch")
        .map(|s| s.parse().map_err(|e| format!("bad --prefetch: {e}")))
        .transpose()?;
    let workers: usize = flags
        .get("workers")
        .map(|s| {
            s.parse::<usize>()
                .map_err(|e| format!("bad --workers: {e}"))
                .and_then(|v| {
                    if v > 0 {
                        Ok(v)
                    } else {
                        Err("bad --workers 0: need at least one worker thread".to_string())
                    }
                })
        })
        .transpose()?
        .unwrap_or(0);
    let max_active_streams: usize = flags
        .get("max-active-streams")
        .map(|s| {
            s.parse::<usize>()
                .map_err(|e| format!("bad --max-active-streams: {e}"))
                .and_then(|v| {
                    if v > 0 {
                        Ok(v)
                    } else {
                        Err(
                            "bad --max-active-streams 0: need at least one admitted stream"
                                .to_string(),
                        )
                    }
                })
        })
        .transpose()?
        .unwrap_or(0);
    let faults = flags
        .get("inject-fault")
        .map(|s| FaultPlan::parse(s))
        .transpose()?
        .unwrap_or_default();
    let fail_fast = flags.contains_key("fail-fast");
    let stats_out = flags.get("stats");
    let run_dir = flags.get("run-dir");
    let resume_dir = flags.get("resume");
    if run_dir.is_some() && resume_dir.is_some() {
        return Err(
            "--run-dir starts a fresh journaled run and --resume continues one; pass one, not both"
                .to_string(),
        );
    }
    let stage_timeout: Option<f64> = flags
        .get("stage-timeout-secs")
        .map(|s| {
            s.parse::<f64>()
                .map_err(|e| format!("bad --stage-timeout-secs: {e}"))
                .and_then(|v| {
                    if v > 0.0 && v.is_finite() {
                        Ok(v)
                    } else {
                        Err(format!("bad --stage-timeout-secs {v}: must be > 0"))
                    }
                })
        })
        .transpose()?;
    let detector_exec = flags
        .get("detector-exec")
        .map(|s| {
            DetectorExec::parse(s)
                .ok_or_else(|| format!("bad --detector-exec {s:?} (off|looped|batched)"))
        })
        .transpose()?
        .unwrap_or(DetectorExec::Off);
    let point = otif.pick_config(pick);
    eprintln!("executing {}", point.config.describe());
    // Streaming engine: same per-clip output as the sequential path,
    // but detector launches are batched across streams and failures are
    // isolated per clip/stream. Stats, fault injection or a detector
    // execution mode force the engine path even single-stream.
    let use_engine = streams > 1
        || !faults.is_empty()
        || stats_out.is_some()
        || prefetch.is_some()
        || detector_exec != DetectorExec::Off
        || run_dir.is_some()
        || resume_dir.is_some()
        || stage_timeout.is_some()
        || workers > 0
        || max_active_streams > 0;
    let (tracks, ledger, failures) = if use_engine {
        let ledger = otif::cv::CostLedger::new();
        let mut opts = EngineOptions {
            streams,
            faults,
            detector_exec,
            workers,
            max_active_streams,
            ..EngineOptions::default()
        };
        if let Some(p) = prefetch {
            opts.prefetch_frames = p;
        }
        if let Some(secs) = stage_timeout {
            opts.stage_timeout = Some(Duration::from_secs_f64(secs));
        }
        let ctx = otif.context();
        // A journaled run checkpoints every completed clip durably; a
        // resumed one ghost-replays the journal's clips bit-exactly and
        // recomputes only the rest.
        let session = if let Some(dir) = run_dir {
            let manifest = run_manifest(&point.config, &ctx, &dataset.test, &opts);
            let journal = RunJournal::create(Path::new(dir), Arc::new(RealRunIo), &manifest)
                .map_err(|e| e.to_string())?;
            eprintln!("journaling run -> {dir}");
            Some(RunSession::fresh(Arc::new(journal)))
        } else if let Some(dir) = resume_dir {
            let manifest = run_manifest(&point.config, &ctx, &dataset.test, &opts);
            let (journal, replayed) =
                RunJournal::open(Path::new(dir), Arc::new(RealRunIo), &manifest)
                    .map_err(|e| e.to_string())?;
            let journal = Arc::new(journal);
            let recovered = journal.recover(&replayed, dataset.test.len());
            let session = RunSession::resumed(journal, recovered);
            eprintln!(
                "resuming {dir}: {} of {} clip(s) recovered from the run journal{}",
                session.recovered_clips(),
                dataset.test.len(),
                if replayed.torn_tail {
                    " (torn tail dropped)"
                } else {
                    ""
                }
            );
            Some(session)
        } else {
            None
        };
        let run = Engine::run_with_session(
            &point.config,
            &ctx,
            &dataset.test,
            &opts,
            &ledger,
            session.as_ref(),
        );
        eprintln!(
            "engine: {} streams, {} frames, {} detector batches \
             (mean occupancy {:.2}), peak {} frames in flight",
            run.stats.streams,
            run.stats.frames,
            run.stats.batches,
            run.stats.mean_batch_occupancy,
            run.stats.max_frames_in_flight
        );
        eprintln!(
            "scheduler: {} workers ({} stream(s) admitted at once), peak {} runnable \
             tasks, {} polls ({} stolen), yields decode {} / window {} / detect {} / \
             track {}, peak {} OS threads",
            run.stats.workers,
            run.stats.max_active_streams,
            run.stats.peak_runnable_tasks,
            run.stats.task_polls,
            run.stats.task_steals,
            run.stats.stage_yields[0],
            run.stats.stage_yields[1],
            run.stats.stage_yields[2],
            run.stats.stage_yields[3],
            run.stats.peak_os_threads,
        );
        eprintln!(
            "pipeline: prefetch {} frames, makespan {:.3} s vs serial {:.3} s \
             ({:.2}x); stalls decode-starved {:.3} s, batcher-wait {:.3} s, \
             backpressure {:.3} s",
            run.stats.prefetch_frames,
            run.stats.execution_seconds,
            run.stats.serial_seconds,
            run.stats.pipeline_speedup,
            run.stats.stall_seconds.decode_starved,
            run.stats.stall_seconds.batcher_wait,
            run.stats.stall_seconds.channel_backpressure,
        );
        if detector_exec != DetectorExec::Off {
            eprintln!(
                "detector exec: {} mode, {} windows in {} forwards, \
                 {:.3} s wall, digest {:#018x}",
                run.stats.detector_exec,
                run.stats.detector_exec_windows,
                run.stats.detector_forwards,
                run.stats.detector_wall_seconds,
                run.stats.detector_digest,
            );
        }
        if session.is_some() {
            eprintln!(
                "run journal: {} clip(s) checkpointed ({} checkpoint failure(s)); \
                 resume skipped {}, recomputed {}",
                run.stats.clips_checkpointed,
                run.stats.checkpoint_failures,
                run.stats.resumed_clips_skipped,
                run.stats.resumed_clips_recomputed
            );
        }
        if !run.stats.healthy() {
            eprintln!(
                "engine health: {} failed clip(s), {} recovered by retry, {} panic(s)",
                run.stats.failed_clips, run.stats.retried_clips, run.stats.panics
            );
            for f in &run.stats.failures {
                eprintln!(
                    "  clip {} (stream {}) failed in {}: {}{}",
                    f.clip,
                    f.stream,
                    f.stage,
                    f.reason,
                    if f.recovered { " [recovered]" } else { "" }
                );
            }
        }
        if let Some(path) = stats_out {
            let json = serde_json::to_string(&run.stats).map_err(|e| e.to_string())?;
            std::fs::write(path, json).map_err(|e| e.to_string())?;
            eprintln!("wrote engine stats -> {path}");
        }
        let failures: Vec<String> = run
            .failures()
            .into_iter()
            .map(|(clip, stage, reason)| format!("clip {clip} failed in {stage}: {reason}"))
            .collect();
        if fail_fast && !failures.is_empty() {
            return Err(format!(
                "{} clip(s) failed (--fail-fast, no tracks written): {}",
                failures.len(),
                failures.join("; ")
            ));
        }
        // Partial results: unrecovered clips contribute empty track
        // lists, so downstream tooling keeps a slot per clip.
        let tracks: Vec<Vec<Track>> = run
            .tracks
            .into_iter()
            .map(|o| match o {
                otif::engine::ClipOutcome::Ok(tracks) => tracks,
                otif::engine::ClipOutcome::Failed { .. } => Vec::new(),
            })
            .collect();
        (tracks, ledger, failures)
    } else {
        let (tracks, ledger) = otif.execute(&point.config, &dataset.test);
        (tracks, ledger, Vec::new())
    };
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "tracks.json".to_string());
    let json = serde_json::to_string(&tracks).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    let n: usize = tracks.iter().map(|t| t.len()).sum();
    println!(
        "extracted {n} tracks in {:.3} simulated seconds -> {out}",
        ledger.execution_total()
    );
    if !failures.is_empty() {
        return Err(format!(
            "partial results: {} clip(s) failed: {}",
            failures.len(),
            failures.join("; ")
        ));
    }
    Ok(())
}

fn cmd_query(flags: HashMap<String, String>) -> Result<(), String> {
    let path = flags
        .get("tracks")
        .cloned()
        .unwrap_or_else(|| "tracks.json".to_string());
    let json = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let tracks: Vec<Vec<Track>> = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    let dataset = dataset_from_flags(&flags)?;
    if tracks.len() != dataset.test.len() {
        return Err(format!(
            "tracks file has {} clips but the dataset's test split has {} — \
             regenerate with matching --dataset/--clips/--seconds/--seed",
            tracks.len(),
            dataset.test.len()
        ));
    }
    let which = flags
        .get("query")
        .cloned()
        .unwrap_or_else(|| "breakdown".to_string());
    let fps = dataset.scene.fps as f32;
    match which.as_str() {
        "count" => {
            let q = TrackQuery::Count;
            for (i, ts) in tracks.iter().enumerate() {
                println!("clip {i}: {} unique cars", q.run(ts, fps)[0]);
            }
            println!(
                "accuracy vs ground truth: {:.1}%",
                q.accuracy(&tracks, &dataset.test) * 100.0
            );
        }
        "breakdown" => {
            let q = TrackQuery::path_breakdown(&dataset.scene);
            if let TrackQuery::PathBreakdown { patterns, .. } = &q {
                let mut totals = vec![0.0; patterns.len()];
                for ts in &tracks {
                    for (i, v) in q.run(ts, fps).iter().enumerate() {
                        totals[i] += v;
                    }
                }
                for (p, t) in patterns.iter().zip(&totals) {
                    println!("{:<10} {t}", p.id);
                }
            }
            println!(
                "accuracy vs ground truth: {:.1}%",
                q.accuracy(&tracks, &dataset.test) * 100.0
            );
        }
        "braking" => {
            let q = TrackQuery::HardBraking { decel: 60.0 };
            let total: f32 = tracks.iter().map(|ts| q.run(ts, fps)[0]).sum();
            println!("hard-braking cars: {total}");
            println!(
                "accuracy vs ground truth: {:.1}%",
                q.accuracy(&tracks, &dataset.test) * 100.0
            );
        }
        "volume" => {
            let q = AggregateQuery::TrafficVolume;
            for (i, (ts, clip)) in tracks.iter().zip(&dataset.test).enumerate() {
                println!(
                    "clip {i}: {:.1} cars/minute",
                    q.run(ts, clip.num_frames(), fps)
                );
            }
            println!(
                "accuracy vs ground truth: {:.1}%",
                q.accuracy(&tracks, &dataset.test) * 100.0
            );
        }
        other => {
            return Err(format!(
                "unknown --query {other:?} (count|breakdown|braking|volume)"
            ))
        }
    }
    Ok(())
}

fn cmd_ingest(flags: HashMap<String, String>) -> Result<(), String> {
    let path = flags
        .get("tracks")
        .cloned()
        .unwrap_or_else(|| "tracks.json".to_string());
    let json = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let tracks: Vec<Vec<Track>> = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    let dataset = dataset_from_flags(&flags)?;
    if tracks.len() != dataset.test.len() {
        return Err(format!(
            "tracks file has {} clips but the dataset's test split has {} — \
             regenerate with matching --dataset/--clips/--seconds/--seed",
            tracks.len(),
            dataset.test.len()
        ));
    }
    let dir = flags
        .get("store")
        .cloned()
        .unwrap_or_else(|| "otif-store".to_string());
    let dir = Path::new(&dir);
    // append to an existing store (journal-bearing or legacy
    // catalog-only), create otherwise
    let mut store = if dir.join(otif::serve::journal::JOURNAL_FILE).exists()
        || dir.join("catalog.json").exists()
    {
        TrackStore::open(dir)?
    } else {
        TrackStore::create(dir)?
    };
    // Keyed ingest makes re-runs idempotent: a clip already stored
    // under the same source key with the same content is skipped, so
    // resuming a crashed ingest never duplicates store entries.
    let mut deduped = 0usize;
    for (idx, (clip, ts)) in dataset.test.iter().zip(&tracks).enumerate() {
        let info = ClipInfo {
            num_frames: clip.num_frames(),
            fps: dataset.scene.fps as f32,
            width: dataset.scene.width as f32,
            height: dataset.scene.height as f32,
        };
        let source = format!("{}/{idx}", dataset.kind.name());
        let (id, fresh) = store.ingest_clip_keyed(&info, ts, &source)?;
        if fresh {
            println!(
                "ingested clip {id}: {} tracks, {} frames (source {source})",
                ts.len(),
                clip.num_frames()
            );
        } else {
            deduped += 1;
            println!("clip {id} already stored for source {source} — skipped");
        }
    }
    println!(
        "store {}: {} clips, fingerprint {:016x}{}",
        dir.display(),
        store.len(),
        store.fingerprint(),
        if deduped > 0 {
            format!(", {deduped} duplicate ingest(s) skipped")
        } else {
            String::new()
        }
    );
    Ok(())
}

/// Shared serve flags: store path + execution options.
fn serve_options(flags: &HashMap<String, String>) -> Result<ServeOptions, String> {
    let threads: usize = flags
        .get("threads")
        .map(|s| s.parse().map_err(|e| format!("bad --threads: {e}")))
        .transpose()?
        .unwrap_or(0);
    Ok(ServeOptions {
        threads,
        pruning: !flags.contains_key("no-prune"),
        cache: CacheMode::On,
    })
}

/// Overload policy from the shared serve flags; all absent = the
/// permissive default (unbounded admission, no deadline).
fn overload_policy(flags: &HashMap<String, String>) -> Result<OverloadPolicy, String> {
    let max_concurrent: usize = flags
        .get("max-concurrent")
        .map(|s| s.parse().map_err(|e| format!("bad --max-concurrent: {e}")))
        .transpose()?
        .unwrap_or(0);
    let max_queue: usize = flags
        .get("queue")
        .map(|s| s.parse().map_err(|e| format!("bad --queue: {e}")))
        .transpose()?
        .unwrap_or(0);
    let deadline = flags
        .get("deadline-ms")
        .map(|s| {
            s.parse::<f64>()
                .map_err(|e| format!("bad --deadline-ms: {e}"))
        })
        .transpose()?
        .map(|ms| Duration::from_secs_f64(ms / 1e3));
    Ok(OverloadPolicy {
        max_concurrent,
        max_queue,
        deadline,
    })
}

fn open_store(flags: &HashMap<String, String>) -> Result<Arc<TrackStore>, String> {
    let dir = flags
        .get("store")
        .cloned()
        .unwrap_or_else(|| "otif-store".to_string());
    Ok(Arc::new(TrackStore::open(Path::new(&dir))?))
}

fn serve_query_from_flags(flags: &HashMap<String, String>) -> Result<ServeQuery, String> {
    let n: usize = flags
        .get("n")
        .map(|s| s.parse().map_err(|e| format!("bad --n: {e}")))
        .transpose()?
        .unwrap_or(2);
    let limit: usize = flags
        .get("limit")
        .map(|s| s.parse().map_err(|e| format!("bad --limit: {e}")))
        .transpose()?
        .unwrap_or(25);
    let min_separation_s: f32 = flags
        .get("sep")
        .map(|s| s.parse().map_err(|e| format!("bad --sep: {e}")))
        .transpose()?
        .unwrap_or(5.0);
    let which = flags
        .get("query")
        .cloned()
        .unwrap_or_else(|| "avg".to_string());
    Ok(match which.as_str() {
        "avg" => ServeQuery::Aggregate(AggregateQuery::AvgVisible),
        "volume" => ServeQuery::Aggregate(AggregateQuery::TrafficVolume),
        "peak" => ServeQuery::Aggregate(AggregateQuery::PeakOccupancy),
        "count" => ServeQuery::Track(TrackQuery::Count),
        "braking" => ServeQuery::Track(TrackQuery::HardBraking { decel: 60.0 }),
        "busy" => ServeQuery::FrameLimit(FrameLimitQuery {
            kind: FrameQueryKind::Count,
            n,
            limit,
            min_separation_s,
        }),
        "hotspot" => {
            let radius: f32 = flags
                .get("radius")
                .map(|s| s.parse().map_err(|e| format!("bad --radius: {e}")))
                .transpose()?
                .unwrap_or(40.0);
            ServeQuery::FrameLimit(FrameLimitQuery {
                kind: FrameQueryKind::HotSpot { radius },
                n,
                limit,
                min_separation_s,
            })
        }
        "region" => {
            let rect = flags
                .get("rect")
                .ok_or_else(|| "--query region needs --rect x,y,w,h".to_string())?;
            let parts: Vec<f32> = rect
                .split(',')
                .map(|p| p.trim().parse().map_err(|e| format!("bad --rect: {e}")))
                .collect::<Result<_, _>>()?;
            let [x, y, w, h] = parts[..] else {
                return Err(format!("bad --rect {rect:?}: expected x,y,w,h"));
            };
            ServeQuery::FrameLimit(FrameLimitQuery {
                kind: FrameQueryKind::Region(Polygon::new(vec![
                    Point { x, y },
                    Point { x: x + w, y },
                    Point { x: x + w, y: y + h },
                    Point { x, y: y + h },
                ])),
                n,
                limit,
                min_separation_s,
            })
        }
        other => {
            return Err(format!(
                "unknown --query {other:?} (avg|volume|peak|count|braking|busy|hotspot|region)"
            ))
        }
    })
}

fn print_rows(store: &TrackStore, rows: &[Vec<f32>]) {
    for (m, row) in store.metas().iter().zip(rows) {
        let vals: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        println!("clip {}: {}", m.id, vals.join(" "));
    }
}

fn cmd_serve_query(flags: HashMap<String, String>) -> Result<(), String> {
    let store = open_store(&flags)?;
    let opts = serve_options(&flags)?;
    let q = serve_query_from_flags(&flags)?;
    let policy = overload_policy(&flags)?;
    let server = QueryServer::with_policy(Arc::clone(&store), 64, policy);
    let outcome = server.execute_robust(&q, &opts)?;
    match Answer::from_bytes(&outcome.bytes) {
        Answer::PerClip(rows) => print_rows(&store, &rows),
        Answer::Frames(frames) => {
            if frames.is_empty() {
                println!("no matching frames");
            }
            for f in &frames {
                println!("clip {} frame {}", f.clip, f.frame);
            }
        }
        Answer::Approximate {
            reason,
            rows,
            frames,
        } => {
            println!("[approximate] {reason}");
            print_rows(&store, &rows);
            for f in &frames {
                println!("clip {} frame {}", f.clip, f.frame);
            }
        }
    }
    let s = server.stats();
    eprintln!(
        "{}: evaluated {} clip(s), pruned {} at the catalog, skipped {} frame scan(s), \
         loaded {} clip file(s), {} quarantined, {} read retr(ies)",
        q.label(),
        s.clips_evaluated,
        s.clips_pruned,
        s.frame_scans_skipped,
        s.clip_loads,
        s.quarantined_clips,
        s.read_retries
    );
    Ok(())
}

fn cmd_store_fsck(flags: HashMap<String, String>) -> Result<(), String> {
    let dir = flags
        .get("store")
        .cloned()
        .unwrap_or_else(|| "otif-store".to_string());
    let repair = flags.contains_key("repair");
    let report_only = flags.contains_key("report-only");
    if repair && report_only {
        return Err("--report-only never modifies or fails; drop it to use --repair".to_string());
    }
    let report = fsck(Path::new(&dir), repair)?;
    println!(
        "journal: {} entr(ies), checkpoint {} entr(ies){}{}",
        report.journal_entries,
        report.checkpoint_entries,
        if report.torn_tail { ", torn tail" } else { "" },
        if report.torn_tail_truncated {
            " (truncated)"
        } else {
            ""
        }
    );
    if report.invalid_records > 0 {
        println!("invalid journal records: {}", report.invalid_records);
    }
    if !report.missing_clips.is_empty() {
        println!("missing clip files: {:?}", report.missing_clips);
    }
    if !report.corrupt_quarantined.is_empty() {
        println!(
            "corrupt clips quarantined: {:?}",
            report.corrupt_quarantined
        );
    }
    if !report.already_quarantined.is_empty() {
        println!("already quarantined: {:?}", report.already_quarantined);
    }
    if !report.orphan_files.is_empty() {
        println!(
            "orphan files{}: {:?}",
            if report.orphan_files_removed > 0 {
                " (removed)"
            } else {
                ""
            },
            report.orphan_files
        );
    }
    if report.checkpoint_rewritten {
        println!("checkpoint rewritten from journal");
    }
    if let Some(path) = flags.get("report") {
        let json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        eprintln!("wrote fsck report -> {path}");
    }
    // Exit policy: report-only always exits 0 (observation never
    // fails); otherwise a nonzero exit means issues remain *after* this
    // invocation — unrepaired debris without --repair, or damage repair
    // could not undo (lost payloads, corrupt records, quarantines).
    if report_only {
        println!(
            "report only: store is {}",
            if report.healthy() {
                "healthy"
            } else {
                "unhealthy"
            }
        );
    } else if repair {
        if !report.consistent() {
            return Err(format!(
                "unrepairable: {} acknowledged clip(s) have no payload on disk, \
                 {} corrupt journal record(s)",
                report.missing_clips.len(),
                report.invalid_records
            ));
        }
        if !report.corrupt_quarantined.is_empty() || !report.already_quarantined.is_empty() {
            return Err(format!(
                "repaired with data loss: {} clip(s) quarantined ({} newly)",
                report.corrupt_quarantined.len() + report.already_quarantined.len(),
                report.corrupt_quarantined.len()
            ));
        }
        println!("store repaired: {} clip(s) intact", report.journal_entries);
    } else if !report.healthy() {
        return Err("store is unhealthy — re-run with --repair".to_string());
    } else {
        println!("store healthy: {} clip(s)", report.journal_entries);
    }
    Ok(())
}

fn cmd_serve_bench(flags: HashMap<String, String>) -> Result<(), String> {
    let store = open_store(&flags)?;
    let opts = serve_options(&flags)?;
    let clients: usize = flags
        .get("clients")
        .map(|s| s.parse().map_err(|e| format!("bad --clients: {e}")))
        .transpose()?
        .unwrap_or(4);
    let repeats: usize = flags
        .get("repeats")
        .map(|s| s.parse().map_err(|e| format!("bad --repeats: {e}")))
        .transpose()?
        .unwrap_or(4);
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(2022);
    if store.is_empty() {
        return Err("store is empty — run `otif-cli ingest` first".to_string());
    }
    let workload = mixed_workload(store.metas(), repeats, seed);
    let policy = overload_policy(&flags)?;
    let server = QueryServer::with_policy(Arc::clone(&store), 256, policy);
    let (cold, cold_traces) = run_workload_traced(&server, &workload, clients, &opts)?;
    let (warm, warm_traces) = run_workload_traced(&server, &workload, clients, &opts)?;
    // Byte identity holds per query over the non-degraded subset: which
    // queries get shed or deadlined under an overload policy is
    // timing-dependent, but every exact answer's bytes are not.
    for (i, (c, w)) in cold_traces.iter().zip(&warm_traces).enumerate() {
        if !c.degraded && !w.degraded && c.fingerprint != w.fingerprint {
            return Err(format!(
                "query {i}: cold and warm exact answers diverged — cache corruption"
            ));
        }
    }
    for (name, run) in [("cold", &cold), ("warm", &warm)] {
        println!(
            "{name}: {} queries, {} clients, {:.1} qps, p50 {:.3} ms, p90 {:.3} ms, \
             p99 {:.3} ms, max {:.3} ms, {} degraded",
            run.latency.count,
            run.clients,
            run.latency.qps,
            run.latency.p50_ms,
            run.latency.p90_ms,
            run.latency.p99_ms,
            run.latency.max_ms,
            run.degraded
        );
    }
    let s = server.stats();
    println!(
        "cache: {} hits, {} misses, {} evictions; pruned {} clip(s), \
         skipped {} frame scan(s), loaded {} clip file(s); \
         shed {} quer(ies), {} degraded answer(s)",
        s.cache.hits,
        s.cache.misses,
        s.cache.evictions,
        s.clips_pruned,
        s.frame_scans_skipped,
        s.clip_loads,
        s.shed_queries,
        s.degraded_answers
    );
    if let Some(path) = flags.get("stats") {
        let json = serde_json::to_string(&s).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        eprintln!("wrote serve stats -> {path}");
    }
    Ok(())
}

const USAGE: &str = "usage: otif-cli <generate|prepare|curve|execute|query|ingest|serve-query|serve-bench|store-fsck> [--flag value ...]
  generate --dataset <name> [--clips N --seconds S --seed N]
  prepare  --dataset <name> [--clips N --seconds S --seed N] [--out model.json]
  curve    --model model.json
  execute  --model model.json --dataset <name> [... same dataset flags] [--pick 0.05] [--streams N]
           [--prefetch N] [--out tracks.json] [--stats stats.json] [--fail-fast]
           [--workers N]             (fixed worker-pool size; default min(cores, 4*streams))
           [--max-active-streams N]  (admission control: streams admitted concurrently; default all)
           [--detector-exec off|looped|batched]   (run the detector surrogate per window, looped or batched)
           [--inject-fault stage:kind:clip:frame[,...]]   (stage: decode|window|detect|track; kind: panic|error|stall)
           [--run-dir DIR]    (journal the run: checkpoint each completed clip durably into DIR)
           [--resume DIR]     (resume a crashed journaled run; outputs are bitwise identical)
           [--stage-timeout-secs S]   (watchdog: a stage stalled > S becomes a recoverable clip failure)
  query    --tracks tracks.json --dataset <name> [... same dataset flags] --query <count|breakdown|braking|volume>
  ingest       --tracks tracks.json --dataset <name> [... same dataset flags] [--store otif-store]
  serve-query  --store otif-store --query <avg|volume|peak|count|braking|busy|hotspot|region>
               [--n N --limit N --sep S] [--radius R] [--rect x,y,w,h] [--threads N] [--no-prune]
               [--deadline-ms MS --max-concurrent N --queue N]   (overload policy; degraded answers print [approximate])
  serve-bench  --store otif-store [--clients N --repeats N --seed N] [--threads N] [--no-prune]
               [--deadline-ms MS --max-concurrent N --queue N] [--stats stats.json]
  store-fsck   --store otif-store [--repair] [--report-only] [--report report.json]
               (journal replay; verifies every clip payload; exits nonzero while issues remain
                unless --report-only)";

/// Boolean flags (no value) across all commands.
const SWITCH_FLAGS: [&str; 4] = ["fail-fast", "no-prune", "repair", "report-only"];

/// Flags each command accepts (beyond the shared dataset flags).
fn allowed_flags(cmd: &str) -> Option<Vec<&'static str>> {
    let mut allowed: Vec<&'static str> = DATASET_FLAGS.to_vec();
    match cmd {
        "generate" => {}
        "prepare" => allowed.push("out"),
        "curve" => allowed = vec!["model"],
        "execute" => allowed.extend([
            "model",
            "pick",
            "streams",
            "prefetch",
            "out",
            "stats",
            "detector-exec",
            "inject-fault",
            "fail-fast",
            "run-dir",
            "resume",
            "stage-timeout-secs",
            "workers",
            "max-active-streams",
        ]),
        "query" => allowed.extend(["tracks", "query"]),
        "ingest" => allowed.extend(["tracks", "store"]),
        "serve-query" => {
            allowed = vec![
                "store",
                "query",
                "n",
                "limit",
                "sep",
                "radius",
                "rect",
                "threads",
                "no-prune",
                "deadline-ms",
                "max-concurrent",
                "queue",
            ]
        }
        "serve-bench" => {
            allowed = vec![
                "store",
                "clients",
                "repeats",
                "seed",
                "threads",
                "no-prune",
                "stats",
                "deadline-ms",
                "max-concurrent",
                "queue",
            ]
        }
        "store-fsck" => allowed = vec!["store", "repair", "report", "report-only"],
        _ => return None,
    }
    Some(allowed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match allowed_flags(cmd) {
        None => Err(format!("unknown command {cmd:?}\n{USAGE}")),
        Some(allowed) => {
            parse_flags(rest, &allowed, &SWITCH_FLAGS).and_then(|flags| match cmd.as_str() {
                "generate" => cmd_generate(flags),
                "prepare" => cmd_prepare(flags),
                "curve" => cmd_curve(flags),
                "execute" => cmd_execute(flags),
                "query" => cmd_query(flags),
                "ingest" => cmd_ingest(flags),
                "serve-query" => cmd_serve_query(flags),
                "serve-bench" => cmd_serve_bench(flags),
                "store-fsck" => cmd_store_fsck(flags),
                _ => unreachable!("allowed_flags gates the command set"),
            })
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
