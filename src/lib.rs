#![warn(missing_docs)]

//! OTIF — a Rust reproduction of *OTIF: Efficient Tracker Pre-processing
//! over Large Video Datasets* (Bastani & Madden, SIGMOD 2022).
//!
//! This facade crate re-exports the workspace crates under stable module
//! names so that downstream users (and the runnable examples in
//! `examples/`) can depend on a single crate:
//!
//! - [`geom`] — geometric primitives, DBSCAN, spatial index, Hungarian.
//! - [`nn`] — the pure-Rust neural-network library used by the
//!   segmentation proxy model and the recurrent tracker.
//! - [`sim`] — the synthetic scene simulator standing in for the paper's
//!   seven video datasets.
//! - [`codec`] — the block-based video store (encode / reduced-rate,
//!   reduced-resolution decode with cost accounting).
//! - [`cv`] — detection types, simulated detectors and the simulated-GPU
//!   cost ledger.
//! - [`track`] — SORT, Kalman filtering and the recurrent reduced-rate
//!   tracker.
//! - [`core`] — OTIF proper: segmentation proxy model, detection and
//!   tracking modules, track refinement and the joint parameter tuner.
//! - [`engine`] — the multi-stream streaming executor with cross-stream
//!   detector batching.
//! - [`query`] — the post-processing query engine over extracted tracks.
//! - [`serve`] — the persistent track store, index-driven clip pruning
//!   and the concurrent, cache-fronted query-serving tier.
//! - [`baselines`] — Miris, BlazeIt, TASTI, NoScope, Chameleon, CaTDet and
//!   CenterTrack re-implementations.
//!
//! # Quickstart
//!
//! ```
//! use otif::sim::{DatasetKind, DatasetConfig};
//!
//! // Generate a tiny synthetic highway dataset and inspect ground truth.
//! let config = DatasetConfig::small(DatasetKind::Caldot1, 7);
//! let dataset = config.generate();
//! assert!(!dataset.test.is_empty());
//! assert!(dataset.test.iter().any(|clip| !clip.gt_tracks.is_empty()));
//! ```
//!
//! See `examples/quickstart.rs` for the full pre-process-then-query flow.

pub use otif_baselines as baselines;
pub use otif_codec as codec;
pub use otif_core as core;
pub use otif_cv as cv;
pub use otif_engine as engine;
pub use otif_geom as geom;
pub use otif_nn as nn;
pub use otif_query as query;
pub use otif_serve as serve;
pub use otif_sim as sim;
pub use otif_track as track;
