#!/usr/bin/env bash
# Pre-merge checks: formatting, lints (warnings are errors), full test
# suite. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== kernels bench smoke (tiny shapes, bit-identity gate)"
cargo run --release -q -p otif-bench --bin kernels tiny

echo "All checks passed."
