#!/usr/bin/env bash
# Pre-merge checks: formatting, lints (warnings are errors), full test
# suite. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== kernels bench smoke (tiny shapes, bit-identity + batched-vs-looped gates)"
cargo run --release -q -p otif-bench --bin kernels tiny

echo "== engine release build (deny warnings)"
RUSTFLAGS="-D warnings" cargo build --release -q -p otif-engine

echo "== engine fault-injection smoke (injected decode fault, healed by retry)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release -q --bin otif-cli -- prepare \
  --dataset caldot2 --clips 2 --seconds 6 --seed 3 --out "$tmp/model.json" >/dev/null
cargo run --release -q --bin otif-cli -- execute \
  --model "$tmp/model.json" --dataset caldot2 --clips 2 --seconds 6 --seed 3 \
  --streams 2 --inject-fault decode:error:0:0 \
  --stats "$tmp/stats.json" --out "$tmp/tracks.json" >/dev/null
grep -q '"failed_clips":1' "$tmp/stats.json"
grep -q '"retried_clips":1' "$tmp/stats.json"

echo "== batched detector exec smoke (looped vs batched: digests equal, forwards coalesce)"
# Re-run the fault-smoke model with the detector surrogate in both
# execution modes: output digests must match bit-for-bit and batched
# mode must need strictly fewer forward passes than looped.
cargo run --release -q --bin otif-cli -- execute \
  --model "$tmp/model.json" --dataset caldot2 --clips 2 --seconds 6 --seed 3 \
  --streams 2 --detector-exec looped \
  --stats "$tmp/stats-looped.json" --out "$tmp/tracks-looped.json" >/dev/null
cargo run --release -q --bin otif-cli -- execute \
  --model "$tmp/model.json" --dataset caldot2 --clips 2 --seconds 6 --seed 3 \
  --streams 2 --detector-exec batched \
  --stats "$tmp/stats-batched.json" --out "$tmp/tracks-batched.json" >/dev/null
python3 - "$tmp" <<'PY'
import json, sys
tmp = sys.argv[1]
looped = json.load(open(f"{tmp}/stats-looped.json"))
batched = json.load(open(f"{tmp}/stats-batched.json"))
assert looped["detector_digest"] == batched["detector_digest"] != 0, \
    (looped["detector_digest"], batched["detector_digest"])
assert batched["detector_forwards"] < looped["detector_forwards"], \
    (batched["detector_forwards"], looped["detector_forwards"])
assert open(f"{tmp}/tracks-looped.json").read() == open(f"{tmp}/tracks-batched.json").read()
print(f"  digest {batched['detector_digest']:#018x}, "
      f"{looped['detector_forwards']} looped -> {batched['detector_forwards']} batched forwards")
PY

echo "== pipelining smoke (prefetch=1 vs prefetch=16: makespan shrinks, ledger sums byte-identical)"
# The throughput bench runs the prefetch sweep and hard-asserts both
# properties internally (bitwise ledger identity across prefetch
# settings, ≥1.5× makespan at prefetch=16 vs 1); re-check the makespan
# improvement here from its summary line so a silently skipped sweep
# can't pass.
bench_out="$(cargo run --release -q -p otif-bench --bin throughput tiny)"
echo "$bench_out" | grep -q 'ledger sums bitwise identical'
echo "$bench_out" | grep 'pipelining smoke:' | awk '{
  p1 = $5; p16 = $9;
  if (!(p16 + 0 < p1 + 0)) { print "makespan did not improve: " p1 " -> " p16; exit 1 }
}'

echo "== serving smoke (ingest synthetic clips, mixed workload, pruning + cache-hit + byte-identity gates)"
# The serving bench hard-asserts internally: byte-identical answers
# across pruning / cache state / concurrency, strictly fewer clips
# evaluated (and clip files read) with index pruning on, and a warm
# answer cache beating the cold pass. `smoke` writes
# results/BENCH_serving_smoke.json.
serve_out="$(cargo run --release -q -p otif-bench --bin serving smoke)"
echo "$serve_out" | grep -q 'answers byte-identical: true'
# CLI round-trip over the same store machinery
cargo run --release -q --bin otif-cli -- ingest \
  --tracks "$tmp/tracks.json" --dataset caldot2 --clips 2 --seconds 6 --seed 3 \
  --store "$tmp/store" >/dev/null
cargo run --release -q --bin otif-cli -- serve-bench \
  --store "$tmp/store" --clients 4 --repeats 3 --stats "$tmp/serve-stats.json" >/dev/null
grep -q '"hits":' "$tmp/serve-stats.json"

echo "== robustness smoke (crash-point ingest recovery + overload shed gates)"
# The robustness bench hard-asserts internally: every crash point in the
# ingest sweep recovers via fsck/journal replay with zero acknowledged
# loss and byte-identical answers; under a saturating burst some queries
# shed and every non-shed answer matches the unloaded reference. `smoke`
# writes results/BENCH_robustness_smoke.json.
robust_out="$(cargo run --release -q -p otif-bench --bin robustness smoke)"
echo "$robust_out" | grep -q 'non-degraded answers identical: true'
# CLI round-trip: corrupt a clip payload, fsck refuses without --repair,
# repairs with it (quarantining the corrupt clip), and serve-query
# degrades to a marked approximate answer instead of failing
python3 - "$tmp/store/clips/clip_0.json" <<'PY'
import sys
p = sys.argv[1]
b = bytearray(open(p, "rb").read())
b[len(b) // 2] ^= 0x55
open(p, "wb").write(bytes(b))
PY
if cargo run --release -q --bin otif-cli -- store-fsck --store "$tmp/store" >/dev/null 2>&1; then
  echo "store-fsck must fail on a corrupt store without --repair"; exit 1
fi
# observation never fails: report-only exits 0 even on a corrupt store
cargo run --release -q --bin otif-cli -- store-fsck --store "$tmp/store" --report-only >/dev/null
# repair quarantines the corrupt clip — data was lost, so the exit is
# still nonzero (scripts must not mistake a lossy repair for healthy)
if cargo run --release -q --bin otif-cli -- store-fsck --store "$tmp/store" --repair \
  --report "$tmp/fsck.json" >/dev/null 2>&1; then
  echo "store-fsck --repair must exit nonzero when clips were quarantined"; exit 1
fi
grep -q '"corrupt_quarantined":\[0\]' "$tmp/fsck.json"
cargo run --release -q --bin otif-cli -- serve-query \
  --store "$tmp/store" --query count > "$tmp/degraded.txt"
grep -q '^\[approximate\] quarantine' "$tmp/degraded.txt"
# overload flags: a one-slot server under an 8-client burst sheds
cargo run --release -q --bin otif-cli -- serve-bench \
  --store "$tmp/store" --clients 8 --repeats 3 \
  --max-concurrent 1 --queue 1 --deadline-ms 250 \
  --stats "$tmp/overload-stats.json" >/dev/null
python3 - "$tmp/overload-stats.json" <<'PY'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["degraded_answers"] > 0, s
assert s["quarantined_clips"] == 1, s
PY

echo "== scheduler smoke (64 streams on a 4-worker pool: thread cap + worker-count determinism)"
# The task engine runs every stream as four resumable state machines on
# a fixed worker pool: 64 streams must finish on 4 OS worker threads
# (peak_os_threads stays ≤ workers + slack for the main thread and the
# stall watchdog), and re-running on 1 worker must produce
# byte-identical tracks. Hard wall-clock cap: a wedged pool must fail
# the check, not hang it.
timeout 600 cargo run --release -q --bin otif-cli -- execute \
  --model "$tmp/model.json" --dataset caldot2 --clips 64 --seconds 1 --seed 3 \
  --streams 64 --workers 4 \
  --stats "$tmp/sched-stats.json" --out "$tmp/tracks-w4.json" >/dev/null
timeout 600 cargo run --release -q --bin otif-cli -- execute \
  --model "$tmp/model.json" --dataset caldot2 --clips 64 --seconds 1 --seed 3 \
  --streams 64 --workers 1 \
  --out "$tmp/tracks-w1.json" >/dev/null
cmp "$tmp/tracks-w4.json" "$tmp/tracks-w1.json"
python3 - "$tmp/sched-stats.json" <<'PY'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["workers"] == 4, s["workers"]
assert s["streams"] == 64, s["streams"]
assert s["failed_clips"] == 0, s["failed_clips"]
assert s["peak_os_threads"] <= 4 + 4, s["peak_os_threads"]
assert s["peak_runnable_tasks"] <= 4 * 64, s["peak_runnable_tasks"]
print(f"  64 streams on 4 workers: peak {s['peak_os_threads']} OS threads, "
      f"peak {s['peak_runnable_tasks']} runnable tasks, tracks identical on 1 worker")
PY

echo "== chaos smoke (engine run-journal kill/torn-tail/mid-rename sweep, resume byte-identity gates)"
# The chaos bench hard-asserts internally: kills at three checkpoint
# ordinals plus a torn journal tail and a mid-rename crash all resume
# with zero acknowledged-clip loss, bitwise-identical tracks/ledgers/
# stats, bounded recomputation and zero duplicate keyed store entries.
# Hard wall-clock cap: a wedged resume must fail the check, not hang it.
chaos_out="$(timeout 600 cargo run --release -q -p otif-bench --bin chaos smoke)"
echo "$chaos_out" | grep -q 'zero acked loss, bitwise-identical resumes'
# CLI round-trip: journal a run, cut the journal to its first
# acknowledgement (simulated crash), resume, and demand byte-identical
# tracks against the uninterrupted batched run from the exec smoke
cargo run --release -q --bin otif-cli -- execute \
  --model "$tmp/model.json" --dataset caldot2 --clips 2 --seconds 6 --seed 3 \
  --streams 2 --detector-exec batched --run-dir "$tmp/run" \
  --out "$tmp/tracks-journaled.json" >/dev/null 2>&1
cmp "$tmp/tracks-batched.json" "$tmp/tracks-journaled.json"
head -n 1 "$tmp/run/journal.log" > "$tmp/run/journal.cut"
mv "$tmp/run/journal.cut" "$tmp/run/journal.log"
timeout 300 cargo run --release -q --bin otif-cli -- execute \
  --model "$tmp/model.json" --dataset caldot2 --clips 2 --seconds 6 --seed 3 \
  --streams 2 --detector-exec batched --resume "$tmp/run" \
  --stats "$tmp/stats-resumed.json" --out "$tmp/tracks-resumed.json" >/dev/null 2>&1
cmp "$tmp/tracks-batched.json" "$tmp/tracks-resumed.json"
grep -q '"resumed_clips_skipped":1' "$tmp/stats-resumed.json"
grep -q '"resumed_clips_recomputed":1' "$tmp/stats-resumed.json"

echo "All checks passed."
