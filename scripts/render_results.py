#!/usr/bin/env python3
"""Render results/*.json into the Results section of EXPERIMENTS.md.

Usage: python3 scripts/render_results.py
Rewrites everything below the `<!-- RESULTS -->` marker in EXPERIMENTS.md.
"""
import json
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS = os.path.join(ROOT, "results")


def load(name):
    path = os.path.join(RESULTS, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def fmt_s(v):
    if v is None:
        return "-"
    return f"{v:.0f}" if v >= 100 else (f"{v:.1f}" if v >= 10 else f"{v:.2f}")


def fmt_pct(v):
    return "-" if v is None else f"{v*100:.0f}%"


def table(headers, rows):
    out = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    out += ["| " + " | ".join(r) + " |" for r in rows]
    return "\n".join(out)


def render():
    parts = []

    t2 = load("table2")
    if t2:
        methods = [m["method"] for m in t2[0]["methods"]]
        for title, key in [("Table 2 — 1 query (s/hour)", "one_query"),
                           ("Table 2 — 5 queries, estimated (s/hour)", "five_queries")]:
            rows = []
            for r in t2:
                row = [r["dataset"]]
                for m in r["methods"]:
                    row.append(fmt_s(m[key]))
                rows.append(row)
            parts.append(f"### {title}\n\n" + table(["dataset"] + methods, rows))
        # headline speedups
        miris, nextb = [], []
        for r in t2:
            o = next(m for m in r["methods"] if m["method"] == "otif")
            if o["one_query"] is None:
                continue
            m5 = next((m["five_queries"] for m in r["methods"] if m["method"] == "miris"), None)
            if m5:
                miris.append(m5 / o["one_query"])
            others = [m["one_query"] for m in r["methods"]
                      if m["method"] not in ("otif", "miris") and m["one_query"]]
            if others:
                nextb.append(min(others) / o["one_query"])
        if miris:
            parts.append(
                f"Average speedup vs Miris at 5 queries: **{sum(miris)/len(miris):.1f}×** "
                f"(paper: 25×); vs next-best baseline at 1 query: "
                f"**{sum(nextb)/len(nextb):.1f}×** (paper: 3.4×).")

    t3 = load("table3")
    if t3:
        rows = []
        for five in (False, True):
            for method in ("otif", "blazeit", "tasti"):
                rs = [r for r in t3 if r["method"] == method]
                pre = sum(r["preprocess_seconds_hour"] for r in rs) / len(rs)
                q = sum(r["query_seconds"] for r in rs) / len(rs)
                acc = sum(r["accuracy"] for r in rs) / len(rs)
                if five:
                    if method == "blazeit":
                        pre *= 5
                    q *= 5
                rows.append(["5" if five else "1", method, fmt_s(pre), fmt_s(q),
                             fmt_s(pre + q), fmt_pct(acc)])
        parts.append("### Table 3 — frame-level limit queries (averages over 6 queries)\n\n"
                     + table(["queries", "method", "pre-proc (s)", "query (s)", "total (s)", "acc"], rows))

    t4 = load("table4")
    if t4:
        levels = []
        for r in t4:
            if r["level"] not in levels:
                levels.append(r["level"])
        rows = []
        for lv in levels:
            row = [lv]
            for ds in ("caldot1", "warsaw"):
                r = next(x for x in t4 if x["level"] == lv and x["dataset"] == ds)
                row += [fmt_s(r["seconds_hour"]), fmt_pct(r["accuracy"])]
            rows.append(row)
        parts.append("### Table 4 — ablation (s/hour within 5 % of best accuracy)\n\n"
                     + table(["method", "caldot1", "acc", "warsaw", "acc"], rows))

    f6 = load("fig6")
    if f6:
        rows = [[e["phase"], e["component"], fmt_s(e["seconds"])] for e in f6]
        parts.append("### Figure 6 — OTIF cost breakdown, caldot1\n\n"
                     + table(["phase", "component", "seconds"], rows))

    f7l = load("fig7_left")
    if f7l:
        rows = [[p["method"], p["config"], f"{p['per_frame_seconds']*1e3:.2f} ms",
                 f"{p['map50']:.3f}"] for p in f7l]
        parts.append("### Figure 7 (left) — detection speed vs mAP@50\n\n"
                     + table(["method", "config", "per-frame", "mAP@50"], rows))

    f7r = load("fig7_right")
    if f7r:
        # one row per resolution at B=0.5
        rows = [[p["resolution"], f"{p['threshold']:.2f}", f"{p['precision']:.3f}",
                 f"{p['recall']:.3f}"] for p in f7r if abs(p["threshold"] - 0.5) < 1e-6]
        parts.append("### Figure 7 (right) — proxy precision/recall at B_proxy = 0.5\n\n"
                     + table(["resolution", "B", "precision", "recall"], rows)
                     + "\n\n(full threshold sweep in `results/fig7_right.json`)")

    f8 = load("fig8")
    if f8:
        rows = []
        for r in f8:
            det = f"{r['detected_true']}/{r['busy_frame_gt']}" if r["busy_frame_gt"] else "-"
            fp = str(r["false_positives"]) if r["busy_frame_gt"] else "-"
            ps = fmt_s(r["proxy_seconds_hour"]) if r["proxy_seconds_hour"] else "-"
            rows.append([r["impl_name"], det, fp, ps])
        parts.append("### Figure 8 / §4.6 — implementation validation\n\n"
                     + table(["implementation", "cars detected", "FPs", "proxy s/hr"], rows))

    av = load("ablation_varrate")
    if av:
        rows = [[r["dataset"], str(r["gap"]), fmt_s(r["fixed_seconds_hour"]),
                 fmt_pct(r["fixed_accuracy"]), fmt_s(r["variable_seconds_hour"]),
                 fmt_pct(r["variable_accuracy"])] for r in av]
        parts.append("### Ablation — fixed vs variable sampling gap\n\n"
                     + table(["dataset", "max gap", "fixed s/hr", "acc", "variable s/hr", "acc"], rows))

    at = load("ablation_tuner")
    if at:
        rows = [[f"{r['c']*100:.0f}%", str(r["curve_points"]), fmt_s(r["tuning_seconds"]),
                 fmt_s(r["picked_seconds_hour"]), fmt_pct(r["picked_accuracy"])] for r in at]
        parts.append("### Ablation — tuning coarseness C (caldot1)\n\n"
                     + table(["C", "curve points", "tuning cost (s)", "picked s/hr", "acc"], rows))

    return "\n\n".join(parts) + "\n"


def main():
    path = os.path.join(ROOT, "EXPERIMENTS.md")
    with open(path) as f:
        text = f.read()
    marker = "<!-- RESULTS -->"
    if marker not in text:
        print("marker not found", file=sys.stderr)
        sys.exit(1)
    head = text.split(marker)[0]
    with open(path, "w") as f:
        f.write(head + marker + "\n\n" + render())
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
